package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

func openTestDB(t *testing.T) *DB {
	t.Helper()
	return openDBAt(t, t.TempDir())
}

func openDBAt(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir, LockTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func kvSchema() *sqltypes.Schema {
	return sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("k", sqltypes.TypeBigInt),
		sqltypes.Col("v", sqltypes.TypeNVarChar),
	}, "k")
}

func mustCreate(t *testing.T, db *DB, name string, s *sqltypes.Schema) *Table {
	t.Helper()
	tab, err := db.CreateTable(CreateTableSpec{Name: name, Schema: s})
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	return tab
}

func commit(t *testing.T, db *DB, tx *Tx) {
	t.Helper()
	if _, err := db.Commit(tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func kv(k int64, v string) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewBigInt(k), sqltypes.NewNVarChar(v)}
}

func TestBasicCRUD(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())

	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(1, "one")); err != nil {
		t.Fatal(err)
	}
	// Read own write.
	if r, ok, _ := tx.Get(tab, sqltypes.NewBigInt(1)); !ok || r[1].Str != "one" {
		t.Fatal("cannot read own insert")
	}
	commit(t, db, tx)

	tx = db.Begin("u")
	if _, err := tx.Update(tab, kv(1, "uno")); err != nil {
		t.Fatal(err)
	}
	if before, err := tx.Delete(tab, sqltypes.NewBigInt(1)); err != nil || before[1].Str != "uno" {
		t.Fatalf("delete = %v, %v", before, err)
	}
	if _, ok, _ := tx.Get(tab, sqltypes.NewBigInt(1)); ok {
		t.Fatal("row visible after own delete")
	}
	commit(t, db, tx)
	if tab.RowCount() != 0 {
		t.Fatalf("rowcount = %d", tab.RowCount())
	}
}

func TestErrors(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(1, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tab, kv(1, "dup")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if _, err := tx.Delete(tab, sqltypes.NewBigInt(9)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing delete: %v", err)
	}
	if _, err := tx.Update(tab, kv(9, "x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing update: %v", err)
	}
	if _, err := tx.Insert(tab, sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewNVarChar("x")}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	commit(t, db, tx)
	if _, err := db.Commit(tx); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit: %v", err)
	}
}

func TestIsolationUncommittedInvisible(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx1 := db.Begin("w")
	if _, err := tx1.Insert(tab, kv(1, "hidden")); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin("r")
	if _, ok, _ := tx2.Get(tab, sqltypes.NewBigInt(1)); ok {
		t.Fatal("uncommitted write visible to another tx")
	}
	commit(t, db, tx1)
	if r, ok, _ := tx2.Get(tab, sqltypes.NewBigInt(1)); !ok || r[1].Str != "hidden" {
		t.Fatal("committed write not visible (read committed)")
	}
	tx2.Rollback()
}

func TestRollbackDiscardsWrites(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	tx.Rollback()
	if tab.RowCount() != 0 {
		t.Fatal("rollback left rows behind")
	}
	// Lock must be free for the next tx.
	tx2 := db.Begin("u")
	if _, err := tx2.Insert(tab, kv(1, "y")); err != nil {
		t.Fatalf("lock not released by rollback: %v", err)
	}
	commit(t, db, tx2)
}

func TestSavepointPartialRollback(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "keep"))
	sp := tx.Savepoint()
	tx.Insert(tab, kv(2, "drop"))
	tx.Insert(tab, kv(3, "drop"))
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get(tab, sqltypes.NewBigInt(2)); ok {
		t.Fatal("rolled-back write still visible in tx")
	}
	if _, ok, _ := tx.Get(tab, sqltypes.NewBigInt(1)); !ok {
		t.Fatal("pre-savepoint write lost")
	}
	// Savepoint token is reusable.
	tx.Insert(tab, kv(4, "again"))
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	tx.Insert(tab, kv(5, "final"))
	commit(t, db, tx)
	if tab.RowCount() != 2 {
		t.Fatalf("rowcount = %d, want 2 (keys 1 and 5)", tab.RowCount())
	}
	if _, ok := tab.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(5))); !ok {
		t.Fatal("post-rollback write lost")
	}
}

func TestSavepointSeqRestore(t *testing.T) {
	db := openTestDB(t)
	tx := db.Begin("u")
	tx.NextSeq()
	tx.NextSeq()
	sp := tx.Savepoint()
	tx.NextSeq()
	tx.NextSeq()
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if got := tx.NextSeq(); got != 3 {
		t.Fatalf("seq after rollback = %d, want 3", got)
	}
	tx.Rollback()
}

func TestInvalidSavepoint(t *testing.T) {
	db := openTestDB(t)
	tx := db.Begin("u")
	if err := tx.RollbackTo(0); err == nil {
		t.Fatal("rollback to nonexistent savepoint accepted")
	}
	tx.Rollback()
}

func TestLockConflictTimeout(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx0 := db.Begin("setup")
	tx0.Insert(tab, kv(1, "x"))
	commit(t, db, tx0)

	tx1 := db.Begin("a")
	if _, err := tx1.Update(tab, kv(1, "a")); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin("b")
	if _, err := tx2.Update(tab, kv(1, "b")); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("expected lock timeout, got %v", err)
	}
	tx2.Rollback()
	commit(t, db, tx1)
	// After tx1 commits, the lock is free.
	tx3 := db.Begin("c")
	if _, err := tx3.Update(tab, kv(1, "c")); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx3)
}

func TestLockWaitSucceedsAfterRelease(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx0 := db.Begin("setup")
	tx0.Insert(tab, kv(1, "x"))
	commit(t, db, tx0)

	tx1 := db.Begin("a")
	if _, err := tx1.Update(tab, kv(1, "a")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tx2 := db.Begin("b")
		if _, err := tx2.Update(tab, kv(1, "b")); err != nil {
			done <- err
			return
		}
		_, err := db.Commit(tx2)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	commit(t, db, tx1)
	if err := <-done; err != nil {
		t.Fatalf("waiter failed: %v", err)
	}
	if r, _ := tab.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1))); r[1].Str != "b" {
		t.Fatalf("final value = %s", r[1].Str)
	}
}

func TestScanMergesOverlay(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx0 := db.Begin("setup")
	for i := int64(0); i < 10; i += 2 {
		tx0.Insert(tab, kv(i, fmt.Sprintf("c%d", i)))
	}
	commit(t, db, tx0)

	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "n1"))   // interleaved insert
	tx.Insert(tab, kv(11, "n11")) // trailing insert
	tx.Delete(tab, sqltypes.NewBigInt(4))
	tx.Update(tab, kv(6, "u6"))
	var got []string
	tx.Scan(tab, func(_ []byte, r sqltypes.Row) bool {
		got = append(got, fmt.Sprintf("%d=%s", r[0].Int(), r[1].Str))
		return true
	})
	want := []string{"0=c0", "1=n1", "2=c2", "6=u6", "8=c8", "11=n11"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	// Committed state unchanged until commit.
	count := 0
	tab.Scan(func([]byte, sqltypes.Row) bool { count++; return true })
	if count != 5 {
		t.Fatalf("committed rows = %d", count)
	}
	// Early stop.
	got = got[:0]
	tx.Scan(tab, func(_ []byte, r sqltypes.Row) bool {
		got = append(got, r[1].Str)
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("early stop = %v", got)
	}
	tx.Rollback()
}

func TestScanRangePrefix(t *testing.T) {
	db := openTestDB(t)
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("a", sqltypes.TypeBigInt),
		sqltypes.Col("b", sqltypes.TypeBigInt),
		sqltypes.Col("v", sqltypes.TypeNVarChar),
	}, "a", "b")
	tab := mustCreate(t, db, "t", s)
	tx := db.Begin("u")
	for a := int64(1); a <= 3; a++ {
		for b := int64(1); b <= 4; b++ {
			tx.Insert(tab, sqltypes.Row{sqltypes.NewBigInt(a), sqltypes.NewBigInt(b), sqltypes.NewNVarChar("x")})
		}
	}
	commit(t, db, tx)

	tx = db.Begin("u")
	tx.Insert(tab, sqltypes.Row{sqltypes.NewBigInt(2), sqltypes.NewBigInt(9), sqltypes.NewNVarChar("new")})
	start, end := PrefixRange(sqltypes.NewBigInt(2))
	var got []int64
	tx.ScanRange(tab, start, end, func(_ []byte, r sqltypes.Row) bool {
		got = append(got, r[1].Int())
		return true
	})
	if fmt.Sprint(got) != "[1 2 3 4 9]" {
		t.Fatalf("prefix scan = %v", got)
	}
	tx.Rollback()
}

func TestHeapTables(t *testing.T) {
	db := openTestDB(t)
	s := sqltypes.MustSchema([]sqltypes.Column{sqltypes.Col("v", sqltypes.TypeNVarChar)})
	tab := mustCreate(t, db, "h", s)
	if !tab.Meta().Heap {
		t.Fatal("keyless table should be a heap")
	}
	tx := db.Begin("u")
	k1, err := tx.Insert(tab, sqltypes.Row{sqltypes.NewNVarChar("a")})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := tx.Insert(tab, sqltypes.Row{sqltypes.NewNVarChar("a")}) // duplicates allowed
	if string(k1) == string(k2) {
		t.Fatal("heap RIDs must be unique")
	}
	if _, _, err := tx.Get(tab, sqltypes.NewNVarChar("a")); err == nil {
		t.Fatal("Get on heap should require RID")
	}
	if r, ok, _ := tx.GetByKey(tab, k1); !ok || r[0].Str != "a" {
		t.Fatal("GetByKey failed")
	}
	commit(t, db, tx)
	if tab.RowCount() != 2 {
		t.Fatalf("heap rowcount = %d", tab.RowCount())
	}
}

func TestIndexesMaintainedAndQueried(t *testing.T) {
	db := openTestDB(t)
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("id", sqltypes.TypeBigInt),
		sqltypes.Col("city", sqltypes.TypeNVarChar),
	}, "id")
	tab := mustCreate(t, db, "people", s)
	tx := db.Begin("u")
	tx.Insert(tab, sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewNVarChar("oslo")})
	tx.Insert(tab, sqltypes.Row{sqltypes.NewBigInt(2), sqltypes.NewNVarChar("rome")})
	commit(t, db, tx)

	ix, err := db.CreateIndex("people", "ix_city", "city")
	if err != nil {
		t.Fatal(err)
	}
	// Index built from existing rows.
	var hits []int64
	tab.LookupIndexPrefix(ix, []sqltypes.Value{sqltypes.NewNVarChar("rome")}, func(_ []byte, r sqltypes.Row) bool {
		hits = append(hits, r[0].Int())
		return true
	})
	if fmt.Sprint(hits) != "[2]" {
		t.Fatalf("index lookup = %v", hits)
	}
	// Maintained on insert/update/delete.
	tx = db.Begin("u")
	tx.Insert(tab, sqltypes.Row{sqltypes.NewBigInt(3), sqltypes.NewNVarChar("rome")})
	tx.Update(tab, sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewNVarChar("rome")})
	tx.Delete(tab, sqltypes.NewBigInt(2))
	commit(t, db, tx)
	hits = hits[:0]
	tab.LookupIndexPrefix(ix, []sqltypes.Value{sqltypes.NewNVarChar("rome")}, func(_ []byte, r sqltypes.Row) bool {
		hits = append(hits, r[0].Int())
		return true
	})
	if fmt.Sprint(hits) != "[1 3]" {
		t.Fatalf("index lookup after DML = %v", hits)
	}
	// Entry count matches rows.
	n := 0
	tab.ScanIndex(ix, func(_, _ []byte) bool { n++; return true })
	if n != tab.RowCount() {
		t.Fatalf("index entries = %d, rows = %d", n, tab.RowCount())
	}
	if err := db.DropIndex("ix_city"); err != nil {
		t.Fatal(err)
	}
	if len(tab.Indexes()) != 0 {
		t.Fatal("index not dropped")
	}
	if err := db.DropIndex("ix_city"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestDDLValidation(t *testing.T) {
	db := openTestDB(t)
	mustCreate(t, db, "t", kvSchema())
	if _, err := db.CreateTable(CreateTableSpec{Name: "t", Schema: kvSchema()}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateIndex("nope", "ix", "k"); err == nil {
		t.Fatal("index on missing table accepted")
	}
	if _, err := db.CreateIndex("t", "ix", "nope"); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if _, err := db.CreateIndex("t", "ix", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("t", "IX", "v"); err == nil {
		t.Fatal("case-colliding index accepted")
	}
	if _, err := db.Table("nope"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	if _, err := db.TableByID(999); err == nil {
		t.Fatal("missing table id lookup succeeded")
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "persisted"))
	tx.Update(tab, kv(1, "updated"))
	commit(t, db, tx)
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tab2.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1)))
	if !ok || r[1].Str != "updated" {
		t.Fatalf("replayed row = %v, %v", r, ok)
	}
	// Transaction ids keep increasing after reopen.
	tx2 := db2.Begin("u")
	if tx2.ID() <= tx.ID() {
		t.Fatalf("tx id went backwards: %d <= %d", tx2.ID(), tx.ID())
	}
	tx2.Rollback()
}

func TestCheckpointAndRecoveryFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	for i := int64(0); i < 50; i++ {
		tx.Insert(tab, kv(i, fmt.Sprintf("v%d", i)))
	}
	commit(t, db, tx)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// More work after the checkpoint.
	tx = db.Begin("u")
	tx.Update(tab, kv(7, "post-ckpt"))
	commit(t, db, tx)
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	if tab2.RowCount() != 50 {
		t.Fatalf("rowcount = %d", tab2.RowCount())
	}
	r, _ := tab2.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(7)))
	if r[1].Str != "post-ckpt" {
		t.Fatalf("post-checkpoint update lost: %v", r)
	}
}

func TestIndexSurvivesCheckpointAndReplay(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	if _, err := db.CreateIndex("t", "ix_v", "v"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "alpha"))
	commit(t, db, tx)
	db.Checkpoint()
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "beta"))
	commit(t, db, tx)
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	ixs := tab2.Indexes()
	if len(ixs) != 1 {
		t.Fatalf("indexes after recovery = %d", len(ixs))
	}
	var hits int
	tab2.LookupIndexPrefix(ixs[0], []sqltypes.Value{sqltypes.NewNVarChar("beta")}, func(_ []byte, _ sqltypes.Row) bool {
		hits++
		return true
	})
	if hits != 1 {
		t.Fatalf("index lookup after recovery = %d hits", hits)
	}
}

func TestUncommittedLostOnCrash(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "committed"))
	commit(t, db, tx)
	// An in-flight tx whose writes never hit the log: simulate crash by
	// simply not committing and closing.
	tx2 := db.Begin("u")
	tx2.Insert(tab, kv(2, "lost"))
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	if tab2.RowCount() != 1 {
		t.Fatalf("rowcount = %d, want only the committed row", tab2.RowCount())
	}
}

func TestConcurrentCommitsDisjointKeys(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tx := db.Begin("u")
				if _, err := tx.Insert(tab, kv(int64(g*1000+i), "x")); err != nil {
					errs <- err
					return
				}
				if _, err := db.Commit(tx); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tab.RowCount() != goroutines*perG {
		t.Fatalf("rowcount = %d", tab.RowCount())
	}
}

func TestCommitTimestampsMonotonic(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	var last int64
	for i := int64(0); i < 100; i++ {
		tx := db.Begin("u")
		tx.Insert(tab, kv(i, "x"))
		ts, err := db.Commit(tx)
		if err != nil {
			t.Fatal(err)
		}
		if ts <= last {
			t.Fatalf("commit ts not monotonic: %d after %d", ts, last)
		}
		last = ts
	}
}

func TestAlterTableMetaWidensRows(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	err := db.AlterTableMeta(tab.ID(), func(m *TableMeta) error {
		m.Schema.Columns = append(m.Schema.Columns, sqltypes.Column{
			Name: "extra", Type: sqltypes.TypeInt, Nullable: true, Ordinal: len(m.Schema.Columns),
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := tab.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1)))
	if len(r) != 3 || !r[2].Null {
		t.Fatalf("row not widened: %v", r)
	}
}

func TestTamperBypassesEverything(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "honest"))
	commit(t, db, tx)
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1))
	logBefore := db.LogSize()
	err := db.TamperUpdateRow(tab, key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewNVarChar("tampered")
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if db.LogSize() != logBefore {
		t.Fatal("tamper must not write to the WAL")
	}
	r, _ := tab.Lookup(key)
	if r[1].Str != "tampered" {
		t.Fatal("tamper had no effect")
	}
	if err := db.TamperDeleteRow(tab, key, true); err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 0 {
		t.Fatal("tamper delete failed")
	}
	if _, err := db.TamperInsertRow(tab, kv(9, "injected"), true); err != nil {
		t.Fatal(err)
	}
	if err := db.TamperColumnType(tab, "v", sqltypes.TypeVarChar); err != nil {
		t.Fatal(err)
	}
	if tab.Schema().Columns[1].Type != sqltypes.TypeVarChar {
		t.Fatal("column type tamper failed")
	}
}

func TestRestoreToTime(t *testing.T) {
	srcDir := t.TempDir()
	db := openDBAt(t, srcDir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "early"))
	commit(t, db, tx)
	cutoff := db.LastCommitTS()

	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "late"))
	commit(t, db, tx)
	db.Close()

	dstDir := t.TempDir() + "/restored"
	if err := RestoreToTime(srcDir, dstDir, cutoff); err != nil {
		t.Fatalf("restore: %v", err)
	}
	rdb := openDBAt(t, dstDir)
	rtab, err := rdb.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if rtab.RowCount() != 1 {
		t.Fatalf("restored rowcount = %d, want 1", rtab.RowCount())
	}
	if _, ok := rtab.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(2))); ok {
		t.Fatal("post-cutoff row present after restore")
	}
}

func TestRestoreAfterCheckpointStripsSnapshots(t *testing.T) {
	srcDir := t.TempDir()
	db := openDBAt(t, srcDir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	db.Checkpoint()
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "y"))
	commit(t, db, tx)
	cutoff := db.LastCommitTS()
	db.Close()

	dstDir := t.TempDir() + "/restored"
	if err := RestoreToTime(srcDir, dstDir, cutoff); err != nil {
		t.Fatal(err)
	}
	rdb := openDBAt(t, dstDir)
	rtab, _ := rdb.Table("t")
	if rtab.RowCount() != 2 {
		t.Fatalf("restored rowcount = %d, want 2", rtab.RowCount())
	}
}

func TestCommitWithLedgerHook(t *testing.T) {
	dir := t.TempDir()
	hook := &testHook{}
	db, err := Open(Options{Dir: dir, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable(CreateTableSpec{Name: "t", Schema: kvSchema(), Ledger: LedgerUpdateable})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("alice")
	tx.Insert(tab, kv(1, "x"))
	tx.Roots = []wal.TableRoot{{TableID: tab.ID()}}
	commit(t, db, tx)
	if hook.commits != 1 {
		t.Fatalf("hook.OnCommit calls = %d", hook.commits)
	}
	// A tx without roots must not reach the hook.
	tx = db.Begin("bob")
	tx.Insert(tab, kv(2, "y"))
	commit(t, db, tx)
	if hook.commits != 1 {
		t.Fatalf("hook called for rootless tx")
	}
}

type testHook struct {
	commits   int
	recovered []*wal.LedgerEntry
}

func (h *testHook) OnCommit(txID uint64, commitTS int64, user string, roots []wal.TableRoot) (uint64, uint32) {
	h.commits++
	return 0, uint32(h.commits - 1)
}
func (h *testHook) BeforeSnapshot()                 {}
func (h *testHook) StateBlob() []byte               { return []byte("state") }
func (h *testHook) LoadState(_ []byte) error        { return nil }
func (h *testHook) Recovered(es []*wal.LedgerEntry) { h.recovered = es }

func TestRecoveryDeliversLedgerEntries(t *testing.T) {
	dir := t.TempDir()
	hook := &testHook{}
	db, err := Open(Options{Dir: dir, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.CreateTable(CreateTableSpec{Name: "t", Schema: kvSchema(), Ledger: LedgerUpdateable})
	for i := int64(0); i < 3; i++ {
		tx := db.Begin("u")
		tx.Insert(tab, kv(i, "x"))
		tx.Roots = []wal.TableRoot{{TableID: tab.ID()}}
		commit(t, db, tx)
	}
	db.Close()

	hook2 := &testHook{}
	db2, err := Open(Options{Dir: dir, Hook: hook2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if len(hook2.recovered) != 3 {
		t.Fatalf("recovered entries = %d, want 3", len(hook2.recovered))
	}
	for i, e := range hook2.recovered {
		if e.Ordinal != uint32(i) || e.User != "u" {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestScanShardsCoverExactly(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	const rows = 3000
	for lo := 0; lo < rows; lo += 100 {
		tx := db.Begin("u")
		for i := lo; i < lo+100; i++ {
			if _, err := tx.Insert(tab, kv(int64(i), fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		commit(t, db, tx)
	}
	var want []string
	tab.Scan(func(k []byte, _ sqltypes.Row) bool {
		want = append(want, string(k))
		return true
	})
	for _, n := range []int{1, 2, 4, 8, 64} {
		shards := tab.ScanShards(n)
		if len(shards) == 0 {
			t.Fatalf("n=%d: no shards", n)
		}
		if len(shards) > n {
			t.Fatalf("n=%d: %d shards", n, len(shards))
		}
		var got []string
		for _, kr := range shards {
			tab.ScanRange(kr.Start, kr.End, func(k []byte, _ sqltypes.Row) bool {
				got = append(got, string(k))
				return true
			})
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: sharded scan saw %d rows, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: row %d out of place", n, i)
			}
		}
	}
}

func TestScanShardsEmptyTable(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	shards := tab.ScanShards(8)
	if len(shards) != 1 || shards[0].Start != nil || shards[0].End != nil {
		t.Fatalf("empty table shards = %+v, want one unbounded range", shards)
	}
	rows := 0
	tab.ScanRange(shards[0].Start, shards[0].End, func([]byte, sqltypes.Row) bool {
		rows++
		return true
	})
	if rows != 0 {
		t.Fatalf("empty shard scanned %d rows", rows)
	}
}

func TestScanIndexShardsCoverExactly(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	ix, err := db.CreateIndex("t", "ix_v", "v")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("u")
	for i := 0; i < 1500; i++ {
		if _, err := tx.Insert(tab, kv(int64(i), fmt.Sprintf("v%05d", i*7%1500))); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db, tx)
	var want []string
	tab.ScanIndex(ix, func(ek, ck []byte) bool {
		want = append(want, string(ek)+"\x00"+string(ck))
		return true
	})
	for _, n := range []int{1, 3, 8} {
		var got []string
		for _, kr := range tab.ScanIndexShards(ix, n) {
			tab.ScanIndexRange(ix, kr.Start, kr.End, func(ek, ck []byte) bool {
				got = append(got, string(ek)+"\x00"+string(ck))
				return true
			})
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: sharded index scan saw %d entries, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: entry %d out of place", n, i)
			}
		}
	}
}
