// Package engine implements the embedded relational engine that plays the
// role of SQL Server in this reproduction: typed tables with clustered
// B+tree (or heap) storage and nonclustered indexes, transactions with
// row-level two-phase locking and savepoints, a write-ahead log with
// checkpointing and crash recovery, snapshots and point-in-time restore.
//
// The engine knows nothing about hashing or blockchains; the ledger logic
// in internal/core attaches through the LedgerHook interface and through
// per-transaction state, mirroring how SQL Ledger extends SQL Server's DML
// plans, commit path and checkpointer (§3.2–§3.3 of the paper).
package engine

import (
	"encoding/json"
	"fmt"
	"strings"

	"sqlledger/internal/sqltypes"
)

// LedgerKind classifies how a table participates in the ledger. The engine
// stores but does not interpret it; internal/core drives the semantics.
type LedgerKind string

// Ledger kinds.
const (
	LedgerNone       LedgerKind = ""
	LedgerUpdateable LedgerKind = "updateable"
	LedgerAppendOnly LedgerKind = "append_only"
	LedgerHistory    LedgerKind = "history"
)

// TableMeta is the catalog entry for a table.
type TableMeta struct {
	ID     uint32
	Name   string
	Schema *sqltypes.Schema
	// Heap marks tables without a primary key; rows are addressed by an
	// 8-byte row identifier (RID) assigned at insert.
	Heap bool
	// System marks engine/ledger system tables (sys_ledger_*).
	System bool

	Ledger LedgerKind
	// HistoryTableID links an updateable ledger table to its history table.
	HistoryTableID uint32
	// BaseTableID links a history table back to its ledger table.
	BaseTableID uint32

	// Dropped tables are renamed, never deleted (§3.5.2). OriginalName
	// preserves the pre-drop name.
	Dropped      bool
	OriginalName string
}

// IndexMeta is the catalog entry for a nonclustered index.
type IndexMeta struct {
	ID      uint32
	Name    string
	TableID uint32
	// Cols holds the ordinals of the indexed columns, in index key order.
	Cols []int
}

// catalog holds all table and index metadata plus id allocation state. It
// is guarded by DB.mu.
type catalog struct {
	Tables      map[uint32]*TableMeta
	Indexes     map[uint32]*IndexMeta
	NextTableID uint32
	NextIndexID uint32
	NextTxID    uint64
}

func newCatalog() *catalog {
	return &catalog{
		Tables:      make(map[uint32]*TableMeta),
		Indexes:     make(map[uint32]*IndexMeta),
		NextTableID: 1,
		NextIndexID: 1,
		NextTxID:    1,
	}
}

func (c *catalog) tableByName(name string) *TableMeta {
	for _, m := range c.Tables {
		if !m.Dropped && strings.EqualFold(m.Name, name) {
			return m
		}
	}
	return nil
}

func (c *catalog) marshal() ([]byte, error) { return json.Marshal(c) }

func unmarshalCatalog(b []byte) (*catalog, error) {
	c := newCatalog()
	if err := json.Unmarshal(b, c); err != nil {
		return nil, fmt.Errorf("engine: bad catalog: %w", err)
	}
	return c, nil
}

// ddlOp is the WAL-logged representation of a catalog mutation. Replaying
// the sequence of ddlOps reproduces the catalog; Meta carries the full
// post-operation TableMeta so replay is a simple upsert.
type ddlOp struct {
	Kind  string // "create_table", "alter_table", "create_index", "drop_index"
	Meta  *TableMeta
	Index *IndexMeta
}

func (o ddlOp) marshal() []byte {
	b, err := json.Marshal(o)
	if err != nil {
		panic(fmt.Sprintf("engine: marshal ddl: %v", err)) // static types: cannot fail
	}
	return b
}

func unmarshalDDL(b []byte) (ddlOp, error) {
	var o ddlOp
	if err := json.Unmarshal(b, &o); err != nil {
		return o, fmt.Errorf("engine: bad ddl record: %w", err)
	}
	return o, nil
}
