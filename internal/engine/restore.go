package engine

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sqlledger/internal/wal"
)

// RestoreToTime implements point-in-time restore (§3.6): it materializes,
// in dstDir, a new database whose state is the source database as of
// targetTS (unix nanoseconds). Transactions with a commit timestamp after
// targetTS — and any DDL that followed them — are discarded.
//
// The restored directory contains only a rewritten WAL (checkpoint records
// are stripped since their snapshots are not copied); opening it replays
// the log from the beginning. The caller opens the result with Open,
// supplying a fresh hook; the ledger core treats the restored database as
// a new "incarnation" for digest management.
//
// The source database must be quiescent (closed, or checkpoint-free while
// restoring); RestoreToTime reads the WAL file directly.
func RestoreToTime(srcDir, dstDir string, targetTS int64) error {
	srcWAL := filepath.Join(srcDir, walFileName)
	if _, err := os.Stat(srcWAL); err != nil {
		return fmt.Errorf("engine: restore: %w", err)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return fmt.Errorf("engine: restore mkdir: %w", err)
	}
	dst, err := wal.Open(filepath.Join(dstDir, walFileName), wal.SyncBuffered)
	if err != nil {
		return err
	}
	defer dst.Close()
	if dst.Size() != 0 {
		return fmt.Errorf("engine: restore destination %s is not empty", dstDir)
	}
	r, err := wal.NewReader(srcWAL, 0, -1)
	if err != nil {
		return err
	}
	defer r.Close()

	// A transaction's DML records immediately precede its COMMIT record
	// (commits append atomically), so we buffer each batch and emit it
	// only once we see a commit with ts <= target. The first commit past
	// the target ends the restore: everything after it is "the future".
	var batch []wal.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("engine: restore read: %w", err)
		}
		switch rec.Type {
		case wal.RecCheckpoint:
			continue // snapshots are not carried over
		case wal.RecDDL:
			if _, err := dst.Append(rec.Type, rec.TxID, rec.Payload); err != nil {
				return err
			}
		case wal.RecCommit:
			p, err := wal.DecodeCommit(rec.Payload)
			if err != nil {
				return fmt.Errorf("engine: restore commit: %w", err)
			}
			if p.CommitTS > targetTS {
				return dst.Flush()
			}
			batch = append(batch, rec)
			if _, err := dst.AppendBatch(batch); err != nil {
				return err
			}
			batch = batch[:0]
		case wal.RecAbort:
			batch = batch[:0]
		default:
			batch = append(batch, rec)
		}
	}
	return dst.Flush()
}
