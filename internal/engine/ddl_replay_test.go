package engine

import (
	"testing"

	"sqlledger/internal/sqltypes"
)

// DDL must be recoverable purely from the WAL (no checkpoint in between):
// the applyDDL replay paths.

func TestDDLReplayCreateIndex(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "alpha"))
	commit(t, db, tx)
	if _, err := db.CreateIndex("t", "ix_v", "v"); err != nil {
		t.Fatal(err)
	}
	// More data after the DDL.
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "beta"))
	commit(t, db, tx)
	db.Close() // no checkpoint: recovery replays create_index

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	ixs := tab2.Indexes()
	if len(ixs) != 1 || ixs[0].Meta().Name != "ix_v" {
		t.Fatalf("indexes after replay = %v", ixs)
	}
	hits := 0
	tab2.LookupIndexPrefix(ixs[0], []sqltypes.Value{sqltypes.NewNVarChar("beta")}, func(_ []byte, _ sqltypes.Row) bool {
		hits++
		return true
	})
	if hits != 1 {
		t.Fatalf("replayed index lookup hits = %d", hits)
	}
}

func TestDDLReplayDropIndex(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	mustCreate(t, db, "t", kvSchema())
	if _, err := db.CreateIndex("t", "ix_v", "v"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("ix_v"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	if len(tab2.Indexes()) != 0 {
		t.Fatal("dropped index resurrected by replay")
	}
}

func TestDDLReplayAlterTable(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	err := db.AlterTableMeta(tab.ID(), func(m *TableMeta) error {
		m.Schema.Columns = append(m.Schema.Columns, sqltypes.Column{
			Name: "extra", Type: sqltypes.TypeInt, Nullable: true, Ordinal: 2,
		})
		m.Name = "renamed"
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDBAt(t, dir)
	if _, err := db2.Table("t"); err == nil {
		t.Fatal("old name still resolves after replayed rename")
	}
	tab2, err := db2.Table("renamed")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Schema().Columns) != 3 {
		t.Fatalf("columns after replay = %d", len(tab2.Schema().Columns))
	}
	r, ok := tab2.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1)))
	if !ok || len(r) != 3 || !r[2].Null {
		t.Fatalf("row not widened by replayed alter: %v", r)
	}
}

func TestDDLReplayInterleavedWithDML(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	// DML, DDL, DML, DDL, DML — recovery must apply them in order.
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "a"))
	commit(t, db, tx)
	if _, err := db.CreateIndex("t", "ix1", "v"); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "b"))
	commit(t, db, tx)
	if err := db.DropIndex("ix1"); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin("u")
	tx.Insert(tab, kv(3, "c"))
	commit(t, db, tx)
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	if tab2.RowCount() != 3 || len(tab2.Indexes()) != 0 {
		t.Fatalf("state after replay: rows=%d indexes=%d", tab2.RowCount(), len(tab2.Indexes()))
	}
}

func TestDirectInsertBypassesWAL(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	before := db.LogSize()
	if _, err := db.DirectInsert(tab, kv(1, "direct")); err != nil {
		t.Fatal(err)
	}
	if db.LogSize() != before {
		t.Fatal("DirectInsert wrote to the WAL")
	}
	if tab.RowCount() != 1 {
		t.Fatal("DirectInsert did not install the row")
	}
	if _, err := db.DirectInsert(tab, kv(1, "dup")); err == nil {
		t.Fatal("duplicate DirectInsert accepted")
	}
	// Heap direct insert assigns RIDs.
	heap := mustCreate(t, db, "h", sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("v", sqltypes.TypeNVarChar),
	}))
	k1, err := db.DirectInsert(heap, sqltypes.Row{sqltypes.NewNVarChar("x")})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := db.DirectInsert(heap, sqltypes.Row{sqltypes.NewNVarChar("x")})
	if string(k1) == string(k2) {
		t.Fatal("heap DirectInsert reused a RID")
	}
}

func TestAccessors(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	if db.Dir() == "" {
		t.Fatal("Dir empty")
	}
	if tab.Name() != "t" || tab.Meta().Name != "t" {
		t.Fatal("table accessors wrong")
	}
	if len(db.Tables()) == 0 {
		t.Fatal("Tables empty")
	}
	tx := db.Begin("alice")
	if tx.User() != "alice" {
		t.Fatal("User wrong")
	}
	if tx.CurrentSeq() != 0 {
		t.Fatal("fresh tx seq != 0")
	}
	tx.NextSeq()
	if tx.CurrentSeq() != 1 {
		t.Fatal("seq not advanced")
	}
	if tx.WriteCount() != 0 {
		t.Fatal("fresh tx has writes")
	}
	tx.Insert(tab, kv(1, "x"))
	if tx.WriteCount() != 1 {
		t.Fatal("WriteCount wrong")
	}
	tx.Rollback()
}

func TestEmptyCommitIsNoop(t *testing.T) {
	db := openTestDB(t)
	before := db.LogSize()
	tx := db.Begin("u")
	if _, err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if db.LogSize() != before {
		t.Fatal("read-only commit wrote to the WAL")
	}
}
