package engine

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"sqlledger/internal/btree"
	"sqlledger/internal/obs"
	"sqlledger/internal/wal"
)

// Pipelined parallel crash recovery.
//
// The serial replay loop paid three costs in sequence per record: read
// (I/O + CRC), decode (allocation-heavy payload parsing), and apply. This
// version overlaps all three. A wal.PipelinedReader streams records
// through a read-ahead stage and a parallel decode pool, still delivering
// them in strict log order. The redo loop itself becomes an analysis pass
// (sort transactions into winners, losers and in-doubt, exactly as
// before) that forwards each committed write set to a pool of apply
// workers, partitioned by hash of (table, key) so every key is owned by
// exactly one worker and per-key commit-TS order is preserved.
//
// Workers never mutate shared structures: the row btrees are read-only
// during replay (lookups only), existing version chains are mutated only
// by their owning worker, and chains for keys new since the snapshot
// accumulate in worker-private maps. A final install phase — parallel
// across tables — bulk-loads the new chains into each table's btree
// (btree.BuildSorted when the table was empty), fixes row counts and RID
// allocators, widens rows for replayed ALTERs, and rebuilds the indexes
// of touched tables. Index state is a pure function of the final live
// rows and widening is idempotent, so the result is identical to serial
// replay — the root equivalence test proves digests match byte-for-byte
// and full verification stays green.
//
// RecoveryWorkers = 1 runs the same analysis/apply/install code inline
// with no goroutines: the serial baseline.

// recoveredOps is one committed transaction's write-set slice destined
// for a single apply worker, stamped with the commit timestamp.
type recoveredOps struct {
	commitTS int64
	ops      []writeOp
}

// newEntry is a worker-private chain for a key absent from the snapshot
// image, installed into the table btree after workers join.
type newEntry struct {
	key   []byte
	chain *versionChain
}

// redoTableState is one apply worker's private view of one table.
type redoTableState struct {
	table *Table
	// chains indexes this worker's new chains by key for op lookup.
	chains map[string]*versionChain
	// entries preserves the new chains for the install phase.
	entries []newEntry
	// liveDelta is the net live-row change this worker applied.
	liveDelta int
}

// redoWorker applies the committed write sets it owns. When recovery runs
// parallel, each has a goroutine draining ch; serial recovery calls
// applyTx directly on a single worker.
type redoWorker struct {
	db     *DB
	ch     chan recoveredOps
	tables map[uint32]*redoTableState
	ops    int
	err    error
}

func (w *redoWorker) state(tid uint32) (*redoTableState, error) {
	st, ok := w.tables[tid]
	if !ok {
		w.db.mu.RLock()
		t := w.db.tables[tid]
		w.db.mu.RUnlock()
		if t == nil {
			return nil, fmt.Errorf("engine: recovery: unknown table %d", tid)
		}
		st = &redoTableState{table: t, chains: make(map[string]*versionChain)}
		w.tables[tid] = st
	}
	return st, nil
}

// applyTx installs one committed transaction's ops (this worker's share)
// as versions stamped with commitTS. Mirrors applyInsert/Delete/Update-
// Locked, minus index maintenance (indexes are rebuilt at install) and
// minus locking (each key is owned by exactly one worker).
func (w *redoWorker) applyTx(tx recoveredOps) error {
	for _, op := range tx.ops {
		st, err := w.state(op.tableID)
		if err != nil {
			return err
		}
		c := st.chains[string(op.key)]
		if c == nil {
			if tc, ok := st.table.rows.Get(op.key); ok {
				c = tc
			}
		}
		switch op.typ {
		case wal.RecInsert:
			if c != nil {
				if _, live := c.latestLive(); live {
					return fmt.Errorf("%w: table %s (recovery)", ErrDuplicateKey, st.table.meta.Name)
				}
				c.appendVersion(tx.commitTS, op.after)
			} else {
				nc := newChain(tx.commitTS, op.after)
				st.chains[string(op.key)] = nc
				st.entries = append(st.entries, newEntry{key: op.key, chain: nc})
			}
			st.liveDelta++
		case wal.RecDelete:
			if c == nil {
				return fmt.Errorf("%w: table %s (recovery)", ErrNotFound, st.table.meta.Name)
			}
			if _, live := c.latestLive(); !live {
				return fmt.Errorf("%w: table %s (recovery)", ErrNotFound, st.table.meta.Name)
			}
			c.appendVersion(tx.commitTS, nil)
			st.liveDelta--
		case wal.RecUpdate:
			if c == nil {
				return fmt.Errorf("%w: table %s (recovery)", ErrNotFound, st.table.meta.Name)
			}
			if _, live := c.latestLive(); !live {
				return fmt.Errorf("%w: table %s (recovery)", ErrNotFound, st.table.meta.Name)
			}
			c.appendVersion(tx.commitTS, op.after)
		}
		w.ops++
	}
	return nil
}

func (w *redoWorker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for tx := range w.ch {
		if w.err != nil {
			continue // keep draining so the analysis loop never blocks
		}
		if err := w.applyTx(tx); err != nil {
			w.err = err
		}
	}
}

// redoHash owns the (table, key) -> worker partition. FNV-1a, inlined so
// the analysis loop doesn't allocate a hasher per op.
func redoHash(tableID uint32, key []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= uint32(tableID >> (8 * i) & 0xff)
		h *= 16777619
	}
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// applyDDLDeferred replays a catalog mutation during recovery, deferring
// all row-storage work (row widening, index builds) to the install phase.
// Both serial and parallel replay use it, so their results agree by
// construction: the install phase widens rows to the final schema
// (idempotent — rows logged after the ALTER are already wide) and
// rebuilds every index of a touched table from its final live rows.
func (db *DB) applyDDLDeferred(op ddlOp, widened, rebuild map[uint32]struct{}) error {
	switch op.Kind {
	case "create_table":
		db.mu.Lock()
		db.cat.Tables[op.Meta.ID] = op.Meta
		if op.Meta.ID >= db.cat.NextTableID {
			db.cat.NextTableID = op.Meta.ID + 1
		}
		db.tables[op.Meta.ID] = newTable(op.Meta)
		db.mu.Unlock()
	case "alter_table":
		db.mu.Lock()
		db.cat.Tables[op.Meta.ID] = op.Meta
		t := db.tables[op.Meta.ID]
		db.mu.Unlock()
		if t == nil {
			return fmt.Errorf("engine: alter_table for unknown table %d", op.Meta.ID)
		}
		t.meta = op.Meta
		widened[op.Meta.ID] = struct{}{}
	case "create_index":
		db.mu.Lock()
		db.cat.Indexes[op.Index.ID] = op.Index
		if op.Index.ID >= db.cat.NextIndexID {
			db.cat.NextIndexID = op.Index.ID + 1
		}
		t := db.tables[op.Index.TableID]
		db.mu.Unlock()
		if t == nil {
			return fmt.Errorf("engine: create_index for unknown table %d", op.Index.TableID)
		}
		t.indexes = append(t.indexes, &Index{meta: op.Index})
		rebuild[op.Index.TableID] = struct{}{}
	case "drop_index":
		db.mu.Lock()
		delete(db.cat.Indexes, op.Index.ID)
		t := db.tables[op.Index.TableID]
		db.mu.Unlock()
		if t != nil {
			for i, ix := range t.indexes {
				if ix.meta.ID == op.Index.ID {
					t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
					break
				}
			}
		}
	default:
		return fmt.Errorf("engine: unknown ddl kind %q", op.Kind)
	}
	return nil
}

// recoveryWorkers resolves Options.RecoveryWorkers: 0 means one per CPU.
func (db *DB) recoveryWorkers() int {
	w := db.opts.RecoveryWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// recover loads the newest snapshot and replays the WAL from its LSN,
// applying only committed transactions (redo); buffered operations of
// transactions without a COMMIT record are discarded (losers never reach
// shared storage in this engine, so no undo pass is needed).
func (db *DB) recover() error {
	start := time.Now()
	sp := db.obs.Tracer().Start("recovery",
		obs.L("workers", strconv.Itoa(db.recoveryWorkers())))
	err := db.recoverPhases(sp, start)
	sp.Finish(err)
	return err
}

func (db *DB) recoverPhases(sp *obs.Span, start time.Time) error {
	phaseSnapshot := time.Now()
	snapLSN, err := db.loadLatestSnapshot()
	if err != nil {
		return err
	}
	db.checkpointLSN = snapLSN
	db.obs.Histogram(obs.RecoverySeconds, nil, obs.L("phase", "snapshot")).ObserveSince(phaseSnapshot)

	workers := db.recoveryWorkers()
	phaseReplay := time.Now()
	pr, err := wal.NewPipelinedReader(filepath.Join(db.opts.Dir, walFileName), snapLSN, db.log.Size(), workers)
	if err != nil {
		return err
	}
	defer pr.Close()

	// Apply pool. Serial recovery (workers == 1) uses pool[0] inline.
	pool := make([]*redoWorker, workers)
	for i := range pool {
		pool[i] = &redoWorker{db: db, tables: make(map[uint32]*redoTableState)}
	}
	var wg sync.WaitGroup
	parallel := workers > 1
	if parallel {
		for _, w := range pool {
			w.ch = make(chan recoveredOps, 256)
			wg.Add(1)
			go w.run(&wg)
		}
	}
	closePool := func() {
		if parallel {
			for _, w := range pool {
				close(w.ch)
			}
			wg.Wait()
			parallel = false
		}
	}
	defer closePool()

	pending := make(map[uint64][]writeOp)
	// preparedAt maps a transaction id to its decoded PREPARE payload;
	// a later COMMIT or ABORT record resolves it, anything left at the
	// end of the log is in doubt.
	preparedAt := make(map[uint64]wal.PreparePayload)
	widened := make(map[uint32]struct{})
	rebuild := make(map[uint32]struct{})
	var entries []*wal.LedgerEntry
	maxTx := uint64(0)
	records := 0
	// shares is reused per commit to partition a write set across the pool.
	shares := make([][]writeOp, workers)
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("engine: recovery read: %w", err)
		}
		records++
		if rec.TxID > maxTx {
			maxTx = rec.TxID
		}
		switch rec.Type {
		case wal.RecInsert, wal.RecDelete, wal.RecUpdate:
			p := rec.DML
			pending[rec.TxID] = append(pending[rec.TxID], writeOp{
				typ: rec.Type, tableID: p.TableID, key: p.Key, before: p.Before, after: p.After,
			})
		case wal.RecCommit:
			p := rec.Commit
			writes := pending[rec.TxID]
			if !parallel {
				if err := pool[0].applyTx(recoveredOps{commitTS: p.CommitTS, ops: writes}); err != nil {
					return fmt.Errorf("engine: recovery apply: %w", err)
				}
			} else {
				for _, op := range writes {
					i := int(redoHash(op.tableID, op.key) % uint32(workers))
					shares[i] = append(shares[i], op)
				}
				for i, share := range shares {
					if len(share) == 0 {
						continue
					}
					pool[i].ch <- recoveredOps{commitTS: p.CommitTS, ops: share}
					shares[i] = nil
				}
			}
			delete(pending, rec.TxID)
			if p.CommitTS > db.lastCommitTS.Load() {
				db.lastCommitTS.Store(p.CommitTS)
			}
			if p.Entry != nil {
				entries = append(entries, p.Entry)
			}
			delete(preparedAt, rec.TxID)
		case wal.RecAbort:
			delete(pending, rec.TxID)
			delete(preparedAt, rec.TxID)
		case wal.RecPrepare:
			preparedAt[rec.TxID] = *rec.Prepare
		case wal.RecDDL:
			p, err := wal.DecodeDDL(rec.Payload)
			if err != nil {
				return fmt.Errorf("engine: recovery ddl: %w", err)
			}
			op, err := unmarshalDDL(p.Body)
			if err != nil {
				return err
			}
			if err := db.applyDDLDeferred(op, widened, rebuild); err != nil {
				return err
			}
		case wal.RecCheckpoint, wal.RecBegin:
			// Informational during redo.
		default:
			return fmt.Errorf("engine: recovery: unknown record type %d", rec.Type)
		}
	}
	closePool()
	applied := 0
	for _, w := range pool {
		if w.err != nil {
			return fmt.Errorf("engine: recovery apply: %w", w.err)
		}
		applied += w.ops
	}
	db.obs.Histogram(obs.RecoverySeconds, nil, obs.L("phase", "replay")).ObserveSince(phaseReplay)

	// Install phase: merge worker-private chains into the tables, widen
	// rows for replayed ALTERs, rebuild indexes of touched tables.
	phaseInstall := time.Now()
	if err := db.installRecovered(pool, widened, rebuild, workers); err != nil {
		return err
	}
	db.obs.Histogram(obs.RecoverySeconds, nil, obs.L("phase", "install")).ObserveSince(phaseInstall)
	db.m.versionsLive.Add(float64(applied))

	if maxTx >= db.cat.NextTxID {
		db.cat.NextTxID = maxTx + 1
	}
	// Reconstruct in-doubt transactions: prepared but undecided at the end
	// of the log. Their writes stay out of shared storage until the 2PC
	// coordinator resolves them (presumed abort when it has no decision).
	// Recovery applies no in-doubt writes, so no row locks are needed to
	// keep the write sets isolated until resolution.
	for txID, p := range preparedAt {
		tx := &Tx{
			db:       db,
			id:       txID,
			user:     p.User,
			writes:   pending[txID],
			Roots:    p.Roots,
			prepared: true,
			gid:      p.Gid,
			inDoubt:  true,
		}
		delete(pending, txID)
		db.inDoubt[p.Gid] = tx
		db.preparedCount.Add(1)
	}
	// Replay waits for every committed transaction's apply before the
	// install barrier, so the applied-through watermark starts flush with
	// the last commit.
	db.appliedTS.Store(db.lastCommitTS.Load())
	if db.opts.Hook != nil {
		db.opts.Hook.Recovered(entries)
	}
	db.obs.Counter(obs.RecoveryRecordsReplayedTotal).Add(int64(records))
	if records > 0 {
		elapsed := time.Since(start)
		sp.Annotate(obs.L("records", strconv.Itoa(records)))
		db.obs.Events().Info(obs.EventRecoveryReplay,
			"snapshot_lsn", snapLSN, "records", records,
			"committed_ledger_entries", len(entries), "end_lsn", db.log.Size(),
			"duration_seconds", elapsed.Seconds(),
			"records_per_sec", float64(records)/elapsed.Seconds())
	}
	return nil
}

// installRecovered folds the apply pool's private state into the shared
// tables. Tables are independent, so the merge runs parallel across them.
func (db *DB) installRecovered(pool []*redoWorker, widened, rebuild map[uint32]struct{}, workers int) error {
	// Collect the per-table work across workers.
	type tableInstall struct {
		table     *Table
		entries   []newEntry
		liveDelta int
	}
	jobs := make(map[uint32]*tableInstall)
	for _, w := range pool {
		for tid, st := range w.tables {
			j, ok := jobs[tid]
			if !ok {
				j = &tableInstall{table: st.table}
				jobs[tid] = j
			}
			j.entries = append(j.entries, st.entries...)
			j.liveDelta += st.liveDelta
		}
	}
	// Widened or re-indexed tables need an install pass even with no DML.
	for _, set := range []map[uint32]struct{}{widened, rebuild} {
		for tid := range set {
			if _, ok := jobs[tid]; !ok {
				db.mu.RLock()
				t := db.tables[tid]
				db.mu.RUnlock()
				if t != nil {
					jobs[tid] = &tableInstall{table: t}
				}
			}
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	work := make([]*tableInstall, 0, len(jobs))
	widenedByTable := make(map[*Table]bool, len(jobs))
	for tid, j := range jobs {
		_, w := widened[tid]
		widenedByTable[j.table] = w
		work = append(work, j)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, j := range work {
		wg.Add(1)
		sem <- struct{}{}
		go func(j *tableInstall) {
			defer func() { <-sem; wg.Done() }()
			t := j.table
			t.mu.Lock()
			defer t.mu.Unlock()
			if len(j.entries) > 0 {
				sort.Slice(j.entries, func(a, b int) bool {
					return bytes.Compare(j.entries[a].key, j.entries[b].key) < 0
				})
				if t.rows.Len() == 0 {
					keys := make([][]byte, len(j.entries))
					chains := make([]*versionChain, len(j.entries))
					for i, e := range j.entries {
						keys[i], chains[i] = e.key, e.chain
					}
					t.rows = btree.BuildSorted(keys, chains)
				} else {
					for _, e := range j.entries {
						t.rows.Put(e.key, e.chain)
					}
				}
				for _, e := range j.entries {
					t.noteRIDLocked(e.key)
				}
			}
			t.liveRows += j.liveDelta
			if widenedByTable[t] {
				t.widenRowsLocked()
			}
			for _, ix := range t.indexes {
				t.buildIndexLocked(ix)
			}
		}(j)
	}
	wg.Wait()
	return nil
}
