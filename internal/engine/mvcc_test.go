package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
)

func getStr(t *testing.T, rtx *ReadTx, tab *Table, k int64) (string, bool) {
	t.Helper()
	row, ok, err := rtx.Get(tab, sqltypes.NewBigInt(k))
	if err != nil {
		t.Fatalf("snapshot get: %v", err)
	}
	if !ok {
		return "", false
	}
	return row[1].Str, true
}

// TestSnapshotReadsArePinned: a read-only transaction keeps seeing the
// committed state as of its begin, across updates and deletes, while
// later snapshots see later versions.
func TestSnapshotReadsArePinned(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())

	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(1, "a")); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx)

	r1 := db.BeginReadOnly()
	defer r1.Close()

	tx = db.Begin("u")
	if _, err := tx.Update(tab, kv(1, "b")); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx)

	r2 := db.BeginReadOnly()
	defer r2.Close()

	tx = db.Begin("u")
	if _, err := tx.Delete(tab, sqltypes.NewBigInt(1)); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx)

	r3 := db.BeginReadOnly()
	defer r3.Close()

	if v, ok := getStr(t, r1, tab, 1); !ok || v != "a" {
		t.Fatalf("r1 sees (%q,%v), want (a,true)", v, ok)
	}
	if v, ok := getStr(t, r2, tab, 1); !ok || v != "b" {
		t.Fatalf("r2 sees (%q,%v), want (b,true)", v, ok)
	}
	if _, ok := getStr(t, r3, tab, 1); ok {
		t.Fatal("r3 sees the row after delete")
	}

	// Scans honor the same snapshot: r1 sees one row, r3 none.
	n := 0
	if err := r1.Scan(tab, func(_ []byte, _ sqltypes.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("r1 scan saw %d rows, want 1", n)
	}
	n = 0
	if err := r3.Scan(tab, func(_ []byte, _ sqltypes.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("r3 scan saw %d rows, want 0", n)
	}
}

// TestSnapshotReadTakesNoLocks: a snapshot read of a row whose lock is
// held by an in-flight writer returns the committed version immediately —
// no lock wait, no lock timeout.
func TestSnapshotReadTakesNoLocks(t *testing.T) {
	reg := obs.NewRegistry()
	db, err := Open(Options{Dir: t.TempDir(), LockTimeout: 2 * time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable(CreateTableSpec{Name: "t", Schema: kvSchema()})
	if err != nil {
		t.Fatal(err)
	}

	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(1, "committed")); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx)

	// Writer holds the row lock with an uncommitted update in flight.
	writer := db.Begin("w")
	if _, err := writer.Update(tab, kv(1, "uncommitted")); err != nil {
		t.Fatal(err)
	}
	defer writer.Rollback()

	start := time.Now()
	rtx := db.BeginReadOnly()
	v, ok := getStr(t, rtx, tab, 1)
	rtx.Close()
	if !ok || v != "committed" {
		t.Fatalf("snapshot read got (%q,%v), want (committed,true)", v, ok)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("snapshot read took %v — it blocked on the writer's lock", elapsed)
	}

	snap := reg.Snapshot()
	if h, ok := snap.Histogram(obs.LockWaitSeconds); ok && h.Count != 0 {
		t.Fatalf("snapshot read recorded %d lock waits, want 0", h.Count)
	}
	if n := snap.CounterValue(obs.LockTimeoutTotal); n != 0 {
		t.Fatalf("snapshot read recorded %d lock timeouts, want 0", n)
	}
	if n := snap.CounterValue(obs.SnapshotReadsTotal); n != 1 {
		t.Fatalf("snapshot_reads_total = %d, want 1", n)
	}
}

// TestVersionGCReclaims: superseded versions survive while a snapshot
// pins them and are reclaimed once it closes; a pruned tombstone removes
// the chain entirely.
func TestVersionGCReclaims(t *testing.T) {
	db := openTestDB(t)
	// Halt the background sweeper so reclaim counts are deterministic;
	// only the explicit GCVersions calls below run.
	db.stopVersionGC()
	tab := mustCreate(t, db, "t", kvSchema())

	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(1, "v0")); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx)

	pin := db.BeginReadOnly()
	for i := 0; i < 5; i++ {
		tx := db.Begin("u")
		if _, err := tx.Update(tab, kv(1, "v")); err != nil {
			t.Fatal(err)
		}
		commit(t, db, tx)
	}
	if n := tab.VersionCount(); n != 6 {
		t.Fatalf("version count = %d, want 6", n)
	}

	// The pinned snapshot holds the horizon at its begin timestamp: the
	// initial version is still reachable, so nothing may be reclaimed.
	if n := db.GCVersions(); n != 0 {
		t.Fatalf("GC reclaimed %d versions under an old snapshot, want 0", n)
	}
	if v, ok := getStr(t, pin, tab, 1); !ok || v != "v0" {
		t.Fatalf("pinned snapshot sees (%q,%v) after GC, want (v0,true)", v, ok)
	}
	pin.Close()

	if n := db.GCVersions(); n != 5 {
		t.Fatalf("GC reclaimed %d versions after unpin, want 5", n)
	}
	if n := tab.VersionCount(); n != 1 {
		t.Fatalf("version count after GC = %d, want 1", n)
	}

	// Delete the row: once the tombstone is the only version at or below
	// the horizon, the whole chain goes away.
	tx = db.Begin("u")
	if _, err := tx.Delete(tab, sqltypes.NewBigInt(1)); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx)
	if n := db.GCVersions(); n != 2 {
		t.Fatalf("GC reclaimed %d versions after delete, want 2 (old version + tombstone)", n)
	}
	if n := tab.VersionCount(); n != 0 {
		t.Fatalf("version count after tombstone GC = %d, want 0", n)
	}
	if n := tab.RowCount(); n != 0 {
		t.Fatalf("row count after tombstone GC = %d, want 0", n)
	}
}

// TestConcurrentSnapshotReadsAndWrites races readers, writers and the
// version GC; under -race this audits the MVCC read path for data races,
// and every reader must see a fully consistent version (never a torn or
// uncommitted value).
func TestConcurrentSnapshotReadsAndWrites(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	for k := int64(0); k < 16; k++ {
		if _, err := tx.Insert(tab, kv(k, "init")); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db, tx)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64((w*8 + i) % 16)
				tx := db.Begin("w")
				if _, err := tx.Update(tab, kv(k, "upd")); err != nil {
					tx.Rollback()
					continue
				}
				_, _ = db.Commit(tx)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx := db.BeginReadOnly()
				for k := int64(0); k < 16; k++ {
					row, ok, err := rtx.Get(tab, sqltypes.NewBigInt(k))
					if err != nil || !ok {
						t.Errorf("snapshot get %d: ok=%v err=%v", k, ok, err)
						rtx.Close()
						return
					}
					if v := row[1].Str; v != "init" && v != "upd" {
						t.Errorf("snapshot read saw torn value %q", v)
					}
				}
				rtx.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.GCVersions()
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSnapshotConsistentCut: regression for snapshots pinned at
// lastCommitTS, which the commit sequencer publishes before the
// durability wait and the apply stage. A snapshot pinned there could
// miss a transaction it is entitled to see and then find it on a
// re-read (non-repeatable), or see a younger transaction while an older
// one is still unapplied. Pinning the applied-through watermark makes
// the cut immutable: every committed transaction here writes the same
// value to both keys, so any snapshot must see them equal and re-reads
// must repeat.
func TestSnapshotConsistentCut(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	for k := int64(0); k < 2; k++ {
		if _, err := tx.Insert(tab, kv(k, "v0")); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, db, tx)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := fmt.Sprintf("w%d-%d", w, i)
				tx := db.Begin("w")
				if _, err := tx.Update(tab, kv(0, v)); err != nil {
					tx.Rollback()
					continue
				}
				if _, err := tx.Update(tab, kv(1, v)); err != nil {
					tx.Rollback()
					continue
				}
				_, _ = db.Commit(tx)
			}
		}(w)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		rtx := db.BeginReadOnly()
		v0a, ok0 := getStr(t, rtx, tab, 0)
		v1, ok1 := getStr(t, rtx, tab, 1)
		v0b, _ := getStr(t, rtx, tab, 0)
		rtx.Close()
		if !ok0 || !ok1 {
			t.Fatal("snapshot missed a seeded row")
		}
		if v0a != v1 {
			t.Fatalf("snapshot saw inconsistent cut: key0=%q key1=%q", v0a, v1)
		}
		if v0a != v0b {
			t.Fatalf("non-repeatable read within one snapshot: %q then %q", v0a, v0b)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTamperVersionsLiveGauge: the direct/tamper storage paths adjust the
// sqlledger_versions_live gauge symmetrically, so it tracks the actual
// stored version count through tampering, not just committed DML and GC.
func TestTamperVersionsLiveGauge(t *testing.T) {
	reg := obs.NewRegistry()
	db, err := Open(Options{Dir: t.TempDir(), LockTimeout: 250 * time.Millisecond, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.stopVersionGC()
	tab, err := db.CreateTable(CreateTableSpec{Name: "t", Schema: kvSchema()})
	if err != nil {
		t.Fatal(err)
	}
	gauge := func() float64 {
		v, _ := reg.Snapshot().GaugeValue(obs.VersionsLive)
		return v
	}

	// Committed insert + two updates build a 3-version chain.
	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(1, "a")); err != nil {
		t.Fatal(err)
	}
	commit(t, db, tx)
	for _, v := range []string{"b", "c"} {
		tx := db.Begin("u")
		if _, err := tx.Update(tab, kv(1, v)); err != nil {
			t.Fatal(err)
		}
		commit(t, db, tx)
	}
	if g := gauge(); g != 3 {
		t.Fatalf("versions_live after 3 committed versions = %v, want 3", g)
	}

	if _, err := db.DirectInsert(tab, kv(2, "x")); err != nil {
		t.Fatal(err)
	}
	if g := gauge(); g != 4 {
		t.Fatalf("versions_live after DirectInsert = %v, want 4", g)
	}

	// In-place tamper update rewrites bytes without creating history.
	if err := db.TamperUpdateRow(tab, tab.keyFor(kv(1, "c")), func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewNVarChar("evil")
		return r
	}, true); err != nil {
		t.Fatal(err)
	}
	if g := gauge(); g != 4 {
		t.Fatalf("versions_live after TamperUpdateRow = %v, want 4", g)
	}

	// Deleting the tampered row drops its whole 3-version chain.
	if err := db.TamperDeleteRow(tab, tab.keyFor(kv(1, "c")), true); err != nil {
		t.Fatal(err)
	}
	if g := gauge(); g != 1 {
		t.Fatalf("versions_live after TamperDeleteRow = %v, want 1", g)
	}

	// Injecting under a fresh key installs a new single-version chain.
	if _, err := db.TamperInsertRow(tab, kv(3, "y"), true); err != nil {
		t.Fatal(err)
	}
	if g := gauge(); g != 2 {
		t.Fatalf("versions_live after TamperInsertRow = %v, want 2", g)
	}
	total := 0
	for _, tt := range db.Tables() {
		total += tt.VersionCount()
	}
	if g := gauge(); g != float64(total) {
		t.Fatalf("versions_live = %v, stored versions = %d", g, total)
	}
}

// TestLockTimeoutReleaseRace hammers the timeout-vs-release window of
// lockTable.acquire: waiters with tiny timeouts race owners releasing the
// lock at the same instant. The table must end empty (no abandoned
// registrations) and — with the recheck in the timer branch — a waiter
// must not report a spurious timeout for a lock that was already free.
func TestLockTimeoutReleaseRace(t *testing.T) {
	lt := newLockTable(obs.NewRegistry())
	key := []byte("k")
	const owners = 8
	var wg sync.WaitGroup
	for o := uint64(1); o <= owners; o++ {
		wg.Add(1)
		go func(owner uint64) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if err := lt.acquire(owner, 1, key, time.Millisecond); err == nil {
					lt.release(owner, 1, string(key))
				}
			}
		}(o)
	}
	wg.Wait()
	if n := lt.entryCount(); n != 0 {
		t.Fatalf("lock table has %d leaked entries after all owners finished", n)
	}

	// Deterministic single-waiter variant: the lock is released just as
	// the waiter's timer fires; the waiter must succeed, not time out.
	for i := 0; i < 50; i++ {
		if err := lt.acquire(1, 2, key, time.Second); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			done <- lt.acquire(2, 2, key, 2*time.Millisecond)
		}()
		time.Sleep(2 * time.Millisecond)
		lt.release(1, 2, string(key))
		if err := <-done; err == nil {
			lt.release(2, 2, string(key))
		}
	}
	if n := lt.entryCount(); n != 0 {
		t.Fatalf("lock table has %d leaked entries after timeout race", n)
	}
}
