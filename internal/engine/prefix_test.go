package engine

import (
	"bytes"
	"testing"

	"sqlledger/internal/sqltypes"
)

func TestPrefixRangeBounds(t *testing.T) {
	start, end := PrefixRange(sqltypes.NewBigInt(7))
	if len(start) == 0 || end == nil {
		t.Fatalf("range = %x..%x", start, end)
	}
	if bytes.Compare(start, end) >= 0 {
		t.Fatal("start must sort before end")
	}
	// A key with the prefix sorts inside the range; the next prefix
	// value's key sorts at-or-after end.
	inside := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(7), sqltypes.NewBigInt(1))
	outside := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(8))
	if bytes.Compare(inside, start) < 0 || bytes.Compare(inside, end) >= 0 {
		t.Fatal("key with prefix outside range")
	}
	if bytes.Compare(outside, end) < 0 {
		t.Fatal("next prefix value inside range")
	}
}

func TestPrefixRangeAllFF(t *testing.T) {
	// A prefix of all 0xFF bytes has no upper bound: end == nil means
	// "scan to the maximum key".
	if end := prefixEnd([]byte{0xFF, 0xFF}); end != nil {
		t.Fatalf("end = %x, want nil", end)
	}
	if end := prefixEnd([]byte{0xFF, 0x01}); !bytes.Equal(end, []byte{0xFF, 0x02}) {
		t.Fatalf("end = %x", end)
	}
	if end := prefixEnd([]byte{0x01, 0xFF}); !bytes.Equal(end, []byte{0x02}) {
		t.Fatalf("end = %x (carry must shorten the key)", end)
	}
}

func TestScanRangeUnboundedEnd(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	for i := int64(0); i < 5; i++ {
		tx.Insert(tab, kv(i, "v"))
	}
	commit(t, db, tx)
	tx = db.Begin("u")
	defer tx.Rollback()
	start := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(3))
	n := 0
	tx.ScanRange(tab, start, nil, func(_ []byte, _ sqltypes.Row) bool {
		n++
		return true
	})
	if n != 2 {
		t.Fatalf("scanned %d rows from key 3, want 2", n)
	}
}

func TestLookupIndexPrefixMissingBaseRow(t *testing.T) {
	// An index entry whose base row was tampered away is skipped by point
	// lookups (verification invariant 5 reports the divergence).
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())
	ix, err := db.CreateIndex("t", "ix_v", "v")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1))
	if err := db.TamperDeleteRow(tab, key, false /* leave the index */); err != nil {
		t.Fatal(err)
	}
	hits := 0
	tab.LookupIndexPrefix(ix, []sqltypes.Value{sqltypes.NewNVarChar("x")}, func(_ []byte, _ sqltypes.Row) bool {
		hits++
		return true
	})
	if hits != 0 {
		t.Fatalf("dangling index entry produced %d hits", hits)
	}
}
