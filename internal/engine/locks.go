package engine

import (
	"errors"
	"sync"
	"time"

	"sqlledger/internal/obs"
)

// ErrLockTimeout is returned when a row lock cannot be acquired within the
// configured wait budget; callers should abort the transaction (the
// engine's deadlock resolution strategy is wait-timeout).
var ErrLockTimeout = errors.New("engine: lock wait timeout")

const lockShards = 128

// lockTable implements row-level exclusive locks keyed by (table, key),
// sharded to reduce contention. Locks are held until transaction end
// (strict two-phase locking on writes).
type lockTable struct {
	shards [lockShards]lockShard

	// waitSeconds observes only contended acquisitions; the uncontended
	// fast path never reads the clock.
	waitSeconds *obs.Histogram
	timeouts    *obs.Counter
}

type lockShard struct {
	mu sync.Mutex
	m  map[lockKey]rowLock
}

type lockKey struct {
	table uint32
	key   string
}

type rowLock struct {
	owner uint64
	// released is allocated by the first waiter and closed when the lock
	// is freed; the uncontended path never creates a channel.
	released chan struct{}
}

func newLockTable(reg *obs.Registry) *lockTable {
	lt := &lockTable{
		waitSeconds: reg.Histogram(obs.LockWaitSeconds, nil),
		timeouts:    reg.Counter(obs.LockTimeoutTotal),
	}
	for i := range lt.shards {
		lt.shards[i].m = make(map[lockKey]rowLock)
	}
	return lt
}

func (lt *lockTable) shard(k lockKey) *lockShard {
	h := uint32(2166136261)
	for i := 0; i < len(k.key); i++ {
		h = (h ^ uint32(k.key[i])) * 16777619
	}
	h ^= k.table * 2654435761
	return &lt.shards[h%lockShards]
}

// acquire takes the exclusive lock on (table, key) for owner, waiting up
// to timeout. Re-acquisition by the current owner succeeds immediately.
func (lt *lockTable) acquire(owner uint64, table uint32, key []byte, timeout time.Duration) error {
	_, _, err := lt.acquireTraced(owner, table, key, timeout, 0)
	return err
}

// acquireTraced is acquire plus trace linkage: a contended wait is
// observed into the wait histogram with tid as the bucket exemplar, and
// the wait duration and its start are returned (zero when the fast path
// hit) so the caller can record a trace span. The uncontended path still
// never reads the clock.
func (lt *lockTable) acquireTraced(owner uint64, table uint32, key []byte, timeout time.Duration, tid obs.TraceID) (time.Duration, time.Time, error) {
	k := lockKey{table: table, key: string(key)}
	s := lt.shard(k)
	deadline := time.Now().Add(timeout)
	var waitStart time.Time
	for {
		s.mu.Lock()
		l, ok := s.m[k]
		if !ok {
			s.m[k] = rowLock{owner: owner}
			s.mu.Unlock()
			var waited time.Duration
			if !waitStart.IsZero() {
				waited = time.Since(waitStart)
				lt.waitSeconds.ObserveTraced(waited.Seconds(), tid)
			}
			return waited, waitStart, nil
		}
		if l.owner == owner {
			s.mu.Unlock()
			return 0, waitStart, nil
		}
		if l.released == nil {
			l.released = make(chan struct{})
			s.m[k] = l
		}
		ch := l.released
		s.mu.Unlock()
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			lt.timeouts.Inc()
			return time.Since(waitStart), waitStart, ErrLockTimeout
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			// The timer can fire in the same instant the lock is released
			// (release closes ch concurrently). Re-check the channel before
			// reporting a timeout: if the lock was freed, loop once more —
			// the retry either grabs the now-free lock immediately or finds
			// a new owner and times out on the deadline check above. Without
			// this, the waiter reports a spurious timeout for a lock that
			// was already free, and its wait registration on the freed
			// channel is abandoned mid-handoff.
			select {
			case <-ch:
				continue
			default:
			}
			lt.timeouts.Inc()
			return time.Since(waitStart), waitStart, ErrLockTimeout
		}
	}
}

// entryCount returns the number of live lock entries across all shards.
// Test support: after every transaction finishes, the table must be empty
// (no leaked registrations).
func (lt *lockTable) entryCount() int {
	n := 0
	for i := range lt.shards {
		s := &lt.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// release frees the lock on (table, key) if owner holds it.
func (lt *lockTable) release(owner uint64, table uint32, key string) {
	k := lockKey{table: table, key: key}
	s := lt.shard(k)
	s.mu.Lock()
	if l, ok := s.m[k]; ok && l.owner == owner {
		delete(s.m, k)
		if l.released != nil {
			close(l.released)
		}
	}
	s.mu.Unlock()
}
