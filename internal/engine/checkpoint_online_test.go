package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlledger/internal/sqltypes"
)

// TestCheckpointCommitterProgress proves the checkpoint no longer holds
// the quiesce lock across the snapshot write: a transaction committed
// while the write is in flight succeeds immediately, and recovery sees
// both the pre-cut rows (from the snapshot) and the mid-write row (from
// WAL replay past the cut).
func TestCheckpointCommitterProgress(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	for i := int64(0); i < 100; i++ {
		tx := db.Begin("u")
		tx.Insert(tab, kv(i, "pre"))
		commit(t, db, tx)
	}
	committed := make(chan struct{})
	db.snapshotWriteHook = func() {
		// Runs on the checkpoint goroutine after quiesce is released; a
		// deadlock here (commit blocked on quiesce) fails the test by
		// timeout.
		tx := db.Begin("u")
		if _, err := tx.Insert(tab, kv(1000, "during-write")); err != nil {
			t.Errorf("insert during snapshot write: %v", err)
		}
		if _, err := db.Commit(tx); err != nil {
			t.Errorf("commit during snapshot write: %v", err)
		}
		close(committed)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-committed:
	default:
		t.Fatal("snapshot write hook did not run")
	}
	if tab.RowCount() != 101 {
		t.Fatalf("rows after online checkpoint = %d", tab.RowCount())
	}
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 101 {
		t.Fatalf("rows after reopen = %d, want 101", tab2.RowCount())
	}
	if _, ok := tab2.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1000))); !ok {
		t.Fatal("mid-write commit lost across restart")
	}
}

// TestCheckpointConcurrentCommitters hammers Checkpoint with parallel
// committers: every commit issued while checkpoints run must survive the
// restart. Run under -race by make test-race-recover.
func TestCheckpointConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	const writers, perWriter = 4, 50
	var wWG, cpWG sync.WaitGroup
	stop := make(chan struct{})
	cpWG.Add(1)
	go func() {
		defer cpWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			for i := 0; i < perWriter; i++ {
				tx := db.Begin("u")
				tx.Insert(tab, kv(int64(w*1000+i), "x"))
				commit(t, db, tx)
			}
		}(w)
	}
	wWG.Wait()
	close(stop)
	cpWG.Wait()
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	if tab2.RowCount() != writers*perWriter {
		t.Fatalf("rows after reopen = %d, want %d", tab2.RowCount(), writers*perWriter)
	}
}

// TestSnapshotTornTmpFile: a crash mid-checkpoint leaves a torn .tmp file
// behind; recovery must ignore it and load the previous good snapshot.
func TestSnapshotTornTmpFile(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "y"))
	commit(t, db, tx)
	db.Close()

	// A torn tmp from a crashed later checkpoint: garbage content, newest
	// possible LSN in the name.
	torn := filepath.Join(dir, "snap-ffffffffffffffff.snap.tmp")
	if err := os.WriteFile(torn, []byte("partial snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 2 {
		t.Fatalf("rows after recovery with torn tmp = %d", tab2.RowCount())
	}
}

// TestSnapshotV2SectionCRCFallback: corruption inside a v2 table section
// fails that snapshot's per-section CRC and recovery falls back to the
// previous valid snapshot plus longer WAL replay.
func TestSnapshotV2SectionCRCFallback(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "y"))
	commit(t, db, tx)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin("u")
	tx.Insert(tab, kv(3, "z"))
	commit(t, db, tx)
	db.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %v", snaps)
	}
	// Glob returns sorted names; LSNs are fixed-width hex, so the last
	// entry is the newest snapshot. Flip its final byte — inside the last
	// table section, past the header the header-CRC covers.
	newest := snaps[len(snaps)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Direct check: the corrupted file must fail with a section CRC error
	// (not a header error), proving the per-section checksums localize it.
	probe := openDBAt(t, t.TempDir())
	if lerr := probe.loadSnapshot(newest); lerr == nil || !strings.Contains(lerr.Error(), "section CRC") {
		t.Fatalf("corrupt v2 load error = %v, want section CRC mismatch", lerr)
	}

	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 3 {
		t.Fatalf("rows after v2 CRC fallback = %d, want 3", tab2.RowCount())
	}
}

// TestSnapshotV1RoundTrip: a snapshot written in the legacy v1 format (as
// by old code) loads through the new version-dispatching loader.
func TestSnapshotV1RoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	if _, err := db.CreateIndex("t", "ix_v", "v"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		tx := db.Begin("u")
		tx.Insert(tab, kv(i, fmt.Sprintf("v%03d", i)))
		commit(t, db, tx)
	}
	if err := db.log.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.writeSnapshotV1(db.log.Size(), nil); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 50 {
		t.Fatalf("rows from v1 snapshot = %d, want 50", tab2.RowCount())
	}
	if len(tab2.Indexes()) != 1 {
		t.Fatalf("indexes from v1 snapshot = %d", len(tab2.Indexes()))
	}
	entries := 0
	tab2.ScanIndex(tab2.Indexes()[0], func(_, _ []byte) bool { entries++; return true })
	if entries != 50 {
		t.Fatalf("index entries rebuilt from v1 snapshot = %d", entries)
	}
}

// dumpState renders every table's full visible state (rows, order, index
// entries, row counts) so two recoveries can be compared structurally.
func dumpState(t *testing.T, db *DB) string {
	t.Helper()
	var sb strings.Builder
	for _, tab := range db.Tables() {
		fmt.Fprintf(&sb, "table %d %s live=%d versions=%d\n",
			tab.ID(), tab.Name(), tab.RowCount(), tab.VersionCount())
		tab.Scan(func(k []byte, row sqltypes.Row) bool {
			fmt.Fprintf(&sb, "  row %x = %v\n", k, row)
			return true
		})
		for _, ix := range tab.Indexes() {
			fmt.Fprintf(&sb, "  index %s\n", ix.Meta().Name)
			tab.ScanIndex(ix, func(ek, ck []byte) bool {
				fmt.Fprintf(&sb, "    %x -> %x\n", ek, ck)
				return true
			})
		}
	}
	return sb.String()
}

// TestParallelRecoveryMixedWorkload replays the same crash image — DDL
// interleaved with inserts, updates, deletes and tombstone re-inserts —
// serially and with 4 workers, and requires structurally identical state.
func TestParallelRecoveryMixedWorkload(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	for i := int64(0); i < 500; i++ {
		tx := db.Begin("u")
		tx.Insert(tab, kv(i, fmt.Sprintf("v%03d", i)))
		commit(t, db, tx)
	}
	// Index created mid-log, after some DML.
	if _, err := db.CreateIndex("t", "ix_v", "v"); err != nil {
		t.Fatal(err)
	}
	// Updates, deletes and tombstone re-inserts.
	for i := int64(0); i < 200; i++ {
		tx := db.Begin("u")
		if _, err := tx.Update(tab, kv(i, fmt.Sprintf("u%03d", i))); err != nil {
			t.Fatal(err)
		}
		commit(t, db, tx)
	}
	for i := int64(200); i < 300; i++ {
		tx := db.Begin("u")
		if _, err := tx.Delete(tab, sqltypes.NewBigInt(i)); err != nil {
			t.Fatal(err)
		}
		commit(t, db, tx)
	}
	for i := int64(200); i < 250; i++ {
		tx := db.Begin("u")
		tx.Insert(tab, kv(i, "reborn"))
		commit(t, db, tx)
	}
	// Widening ALTER mid-log: earlier rows must end up NULL-widened.
	err := db.AlterTableMeta(tab.ID(), func(m *TableMeta) error {
		m.Schema.Columns = append(m.Schema.Columns, sqltypes.Column{
			Name: "extra", Type: sqltypes.TypeInt, Nullable: true, Ordinal: 2,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Post-ALTER DML writes full-width rows.
	tab3cols, _ := db.Table("t")
	for i := int64(600); i < 650; i++ {
		tx := db.Begin("u")
		row := sqltypes.Row{sqltypes.NewBigInt(i), sqltypes.NewNVarChar("wide"), sqltypes.NewInt(int32(i))}
		if _, err := tx.Insert(tab3cols, row); err != nil {
			t.Fatal(err)
		}
		commit(t, db, tx)
	}
	// A second table so replay exercises cross-table partitioning.
	tab2 := mustCreate(t, db, "t2", kvSchema())
	for i := int64(0); i < 300; i++ {
		tx := db.Begin("u")
		tx.Insert(tab2, kv(i, "other"))
		commit(t, db, tx)
	}
	db.Close() // crash image: full WAL, no snapshot

	open := func(workers int) *DB {
		d, err := Open(Options{Dir: dir, LockTimeout: 250 * time.Millisecond, RecoveryWorkers: workers})
		if err != nil {
			t.Fatalf("open workers=%d: %v", workers, err)
		}
		return d
	}
	serial := open(1)
	want := dumpState(t, serial)
	serial.Close()
	for _, workers := range []int{2, 4, 8} {
		par := open(workers)
		got := dumpState(t, par)
		par.Close()
		if got != want {
			t.Fatalf("workers=%d state differs from serial replay:\n--- serial ---\n%s\n--- parallel ---\n%s", workers, want, got)
		}
	}
}
