package engine

import (
	"fmt"

	"sqlledger/internal/sqltypes"
)

// Direct storage access. Two very different callers use this path:
//
//   - The ledger core's checkpoint-time queue drain (§3.3.2): runs under
//     full quiescence, bypasses the WAL because the snapshot written
//     immediately afterwards persists the effect, and recovery from any
//     older snapshot reconstructs the same entries from COMMIT records.
//
//   - Tamper simulation for tests, examples and the verification
//     benchmarks: models the paper's threat model (§2.5.2) where an
//     attacker edits database files in storage, bypassing all engine
//     checks and leaving no log trace. Tampering therefore edits the
//     stored version bytes in place rather than appending MVCC versions —
//     an attacker rewriting data pages does not create history.

// DirectInsert installs a row bypassing transactions and the WAL. For heap
// tables a RID is assigned. Returns the clustered key.
func (db *DB) DirectInsert(t *Table, row sqltypes.Row) ([]byte, error) {
	if err := t.meta.Schema.Validate(row); err != nil {
		return nil, err
	}
	var key []byte
	if t.meta.Heap {
		key = t.allocRID()
	} else {
		key = t.keyFor(row)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.applyInsertLocked(key, row, db.LastCommitTS()); err != nil {
		return nil, err
	}
	db.m.versionsLive.Add(1)
	return key, nil
}

// TamperUpdateRow overwrites the stored bytes of a row in place, bypassing
// every engine and ledger check — the storage-level attack of §2.5.2.
// When updateIndexes is false, nonclustered indexes keep their old entries
// (an attacker editing data pages typically would not fix up indexes),
// which verification invariant 5 detects.
func (db *DB) TamperUpdateRow(t *Table, key []byte, mutate func(sqltypes.Row) sqltypes.Row, updateIndexes bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.rows.Get(key)
	if !ok {
		return fmt.Errorf("%w: tamper target", ErrNotFound)
	}
	old, live := c.latestLive()
	if !live {
		return fmt.Errorf("%w: tamper target", ErrNotFound)
	}
	next := mutate(old.Clone())
	c.vs[len(c.vs)-1].row = next
	if updateIndexes {
		for _, ix := range t.indexes {
			oldEnt := ix.entryKey(key, old)
			newEnt := ix.entryKey(key, next)
			if string(oldEnt) != string(newEnt) {
				ix.tree.Delete(oldEnt)
				ix.tree.Put(newEnt, key)
			}
		}
	}
	return nil
}

// TamperDeleteRow removes a row — the whole version chain, as an attacker
// dropping a page would — bypassing all checks.
func (db *DB) TamperDeleteRow(t *Table, key []byte, updateIndexes bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.rows.Get(key)
	if !ok {
		return fmt.Errorf("%w: tamper target", ErrNotFound)
	}
	old, live := c.latestLive()
	t.rows.Delete(key)
	// The whole chain is gone; keep the gauge honest even for tampering.
	db.m.versionsLive.Add(-float64(c.versionCount()))
	if live {
		t.liveRows--
		if updateIndexes {
			for _, ix := range t.indexes {
				ix.tree.Delete(ix.entryKey(key, old))
			}
		}
	}
	return nil
}

// TamperInsertRow injects a row bypassing all checks. The injected version
// carries timestamp 0, so every snapshot sees it — edited storage has no
// provenance.
func (db *DB) TamperInsertRow(t *Table, row sqltypes.Row, updateIndexes bool) ([]byte, error) {
	var key []byte
	if t.meta.Heap {
		key = t.allocRID()
	} else {
		key = t.keyFor(row)
	}
	return key, db.TamperInsertRowAt(t, key, row, updateIndexes)
}

// TamperInsertRowAt injects a row under an explicit clustered key (heaps
// included), bypassing all checks. The tamper-repair path (§3.7) uses it
// to reinstate deleted rows under their original keys.
func (db *DB) TamperInsertRowAt(t *Table, key []byte, row sqltypes.Row, updateIndexes bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.rows.Get(key); ok {
		if _, live := c.latestLive(); live {
			if updateIndexes {
				return fmt.Errorf("%w: table %s", ErrDuplicateKey, t.meta.Name)
			}
			// Overwrite the newest version's stored bytes in place.
			c.vs[len(c.vs)-1].row = row
			t.noteRIDLocked(key)
			return nil
		}
		// Reinstate over a tombstone (the tamper-repair path). The
		// tombstone version is rewritten in place, so versions_live is
		// unchanged.
		c.vs[len(c.vs)-1] = rowVersion{ts: c.latest().ts, row: row}
	} else {
		t.rows.Put(key, newChain(0, row))
		db.m.versionsLive.Add(1)
	}
	t.liveRows++
	t.noteRIDLocked(key)
	if updateIndexes {
		for _, ix := range t.indexes {
			ix.tree.Put(ix.entryKey(key, row), key)
		}
	}
	return nil
}

// TamperColumnType rewrites the declared type of a column in the catalog
// without touching stored values — the metadata attack from §3.2 that the
// serialization format is designed to detect.
func (db *DB) TamperColumnType(t *Table, colName string, newType sqltypes.TypeID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ord := t.meta.Schema.OrdinalOf(colName)
	if ord < 0 {
		return fmt.Errorf("engine: column %q not found", colName)
	}
	t.meta.Schema.Columns[ord].Type = newType
	return nil
}

// TamperIndexEntry overwrites the clustered-key pointer of an index entry,
// desynchronizing the index from the base table (detected by invariant 5).
func (db *DB) TamperIndexEntry(t *Table, ix *Index, entryKey, newClusteredKey []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := ix.tree.Get(entryKey); !ok {
		return fmt.Errorf("%w: index entry", ErrNotFound)
	}
	ix.tree.Put(entryKey, newClusteredKey)
	return nil
}
