package engine

import (
	"os"
	"path/filepath"
	"testing"

	"sqlledger/internal/sqltypes"
)

// TestCrashTornWALTail simulates a crash that tears the last WAL record:
// the torn tail is discarded, everything before it survives.
func TestCrashTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "safe"))
	commit(t, db, tx)
	db.Close()

	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half a record header: a crash mid-write.
	f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 1 {
		t.Fatalf("rows = %d", tab2.RowCount())
	}
	// The database keeps working: new commits append cleanly.
	tx = db2.Begin("u")
	tx.Insert(tab2, kv(2, "after-crash"))
	commit(t, db2, tx)
	db2.Close()
	db3 := openDBAt(t, dir)
	tab3, _ := db3.Table("t")
	if tab3.RowCount() != 2 {
		t.Fatalf("rows after second recovery = %d", tab3.RowCount())
	}
}

// TestCrashDuringBatchLosesWholeTransaction: if the WAL tears in the
// middle of a transaction's batch (before its COMMIT record), recovery
// discards the whole transaction.
func TestCrashDuringBatchLosesWholeTransaction(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "committed"))
	commit(t, db, tx)
	sizeAfterFirst := db.LogSize()
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "torn-1"))
	tx.Insert(tab, kv(3, "torn-2"))
	commit(t, db, tx)
	db.Close()

	// Cut the log in the middle of the second transaction's batch —
	// after its first DML record, before the COMMIT.
	walPath := filepath.Join(dir, "wal.log")
	st, _ := os.Stat(walPath)
	cut := sizeAfterFirst + (st.Size()-sizeAfterFirst)/2
	if err := os.Truncate(walPath, cut); err != nil {
		t.Fatal(err)
	}

	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	if tab2.RowCount() != 1 {
		t.Fatalf("rows = %d: a torn transaction must be atomic", tab2.RowCount())
	}
	if _, ok := tab2.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(2))); ok {
		t.Fatal("half of a torn transaction survived")
	}
}

// TestCorruptSnapshotFallsBack: a corrupted newest snapshot is skipped;
// recovery falls back to replaying more WAL (here: from the beginning).
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "y"))
	commit(t, db, tx)
	db.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v", snaps)
	}
	b, _ := os.ReadFile(snaps[0])
	b[len(b)/2] ^= 0xFF
	os.WriteFile(snaps[0], b, 0o644)

	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 2 {
		t.Fatalf("rows after fallback recovery = %d", tab2.RowCount())
	}
}

// TestRepeatedCheckpointReopenCycles stresses the checkpoint/recover loop.
func TestRepeatedCheckpointReopenCycles(t *testing.T) {
	dir := t.TempDir()
	total := 0
	for cycle := 0; cycle < 5; cycle++ {
		db := openDBAt(t, dir)
		var tab *Table
		if cycle == 0 {
			tab = mustCreate(t, db, "t", kvSchema())
		} else {
			var err error
			tab, err = db.Table("t")
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			tx := db.Begin("u")
			tx.Insert(tab, kv(int64(cycle*100+i), "v"))
			commit(t, db, tx)
			total++
		}
		if cycle%2 == 0 {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if tab.RowCount() != total {
			t.Fatalf("cycle %d: rows = %d, want %d", cycle, tab.RowCount(), total)
		}
		db.Close()
	}
}

// TestMultipleSnapshotsNewestWins checks that recovery picks the newest
// snapshot (shortest replay).
func TestMultipleSnapshotsNewestWins(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	for i := 0; i < 3; i++ {
		tx := db.Begin("u")
		tx.Insert(tab, kv(int64(i), "v"))
		commit(t, db, tx)
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	db2 := openDBAt(t, dir)
	tab2, _ := db2.Table("t")
	if tab2.RowCount() != 3 {
		t.Fatalf("rows = %d", tab2.RowCount())
	}
}

// TestRecoveryWithAllSnapshotsCorrupt falls back to a full WAL replay.
func TestRecoveryWithAllSnapshotsCorrupt(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "t", kvSchema())
	tx := db.Begin("u")
	tx.Insert(tab, kv(1, "x"))
	commit(t, db, tx)
	db.Checkpoint()
	tx = db.Begin("u")
	tx.Insert(tab, kv(2, "y"))
	commit(t, db, tx)
	db.Checkpoint()
	db.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	for _, s := range snaps {
		os.Truncate(s, 10)
	}
	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 2 {
		t.Fatalf("rows = %d", tab2.RowCount())
	}
}
