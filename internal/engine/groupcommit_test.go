package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// TestCommitStressConcurrent hammers the staged commit pipeline from many
// goroutines: every commit must survive, timestamps must stay strictly
// monotonic, and recovery must replay the full set. Run under -race by
// `make test-race-commit`.
func TestCommitStressConcurrent(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	tab := mustCreate(t, db, "kv", kvSchema())

	const clients, perClient = 8, 50
	tsCh := make(chan int64, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := int64(c*perClient + i)
				tx := db.Begin(fmt.Sprintf("g%d", c))
				if _, err := tx.Insert(tab, sqltypes.Row{sqltypes.NewBigInt(key), sqltypes.NewNVarChar("v0")}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				ts, err := db.Commit(tx)
				if err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				tsCh <- ts
				// Touch the row again so updates flow through the
				// pipeline too.
				tx2 := db.Begin(fmt.Sprintf("g%d", c))
				if _, err := tx2.Update(tab, sqltypes.Row{sqltypes.NewBigInt(key), sqltypes.NewNVarChar("v1")}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, err := db.Commit(tx2); err != nil {
					t.Errorf("commit update: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(tsCh)

	seen := make(map[int64]bool)
	for ts := range tsCh {
		if seen[ts] {
			t.Fatalf("duplicate commit timestamp %d", ts)
		}
		seen[ts] = true
	}
	if got := tab.RowCount(); got != clients*perClient {
		t.Fatalf("row count = %d, want %d", got, clients*perClient)
	}
	if db.LastCommitTS() == 0 {
		t.Fatal("LastCommitTS not advanced")
	}

	st := db.GroupCommitStats()
	if st.Commits != 2*clients*perClient {
		t.Fatalf("group committer saw %d commits, want %d", st.Commits, 2*clients*perClient)
	}
	if st.Groups > st.Commits {
		t.Fatalf("groups (%d) exceed commits (%d)", st.Groups, st.Commits)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash-free reopen: recovery must replay every committed transaction.
	db2 := openDBAt(t, dir)
	tab2, err := db2.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if got := tab2.RowCount(); got != clients*perClient {
		t.Fatalf("rows after recovery = %d, want %d", got, clients*perClient)
	}
	var bad int
	tab2.Scan(func(_ []byte, r sqltypes.Row) bool {
		if r[1].Str != "v1" {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d rows missing their update after recovery", bad)
	}
}

// TestCommitSerializedAblation covers the GroupCommit.Disabled path: the
// pre-pipeline serialized commit must still work and report no group
// activity.
func TestCommitSerializedAblation(t *testing.T) {
	db, err := Open(Options{
		Dir:         t.TempDir(),
		LockTimeout: 250 * time.Millisecond,
		GroupCommit: wal.GroupConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab := mustCreate(t, db, "kv", kvSchema())
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tx := db.Begin("u")
				if _, err := tx.Insert(tab, sqltypes.Row{sqltypes.NewBigInt(int64(c*20 + i)), sqltypes.NewNVarChar("v")}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, err := db.Commit(tx); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := tab.RowCount(); got != 80 {
		t.Fatalf("row count = %d, want 80", got)
	}
	if st := db.GroupCommitStats(); st != (wal.GroupStats{}) {
		t.Fatalf("disabled committer reported activity: %+v", st)
	}
}
