package sqlledger_test

// Benchmarks for the always-on auditor's central claim: re-verifying K
// freshly closed blocks costs O(K), independent of how much history sits
// below the watermark. BenchmarkAuditIncremental builds ledgers of
// different depths and audits the same delta on each — ns/op should stay
// flat as the N= subbenchmark grows. BenchmarkAuditSampled prices one
// 10% cold-history sweep.

import (
	"fmt"
	"testing"
	"time"

	"sqlledger"
)

// auditLedger builds a ledger with exactly `blocks` closed blocks of
// txPerBlock single-row transactions.
func auditLedger(b *testing.B, txPerBlock uint32, blocks int) (*sqlledger.DB, *sqlledger.LedgerTable, int64) {
	b.Helper()
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: b.TempDir(), Name: "bench", BlockSize: txPerBlock,
		LockTimeout: 5 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		b.Fatal(err)
	}
	var next int64
	addBlocks := func(n int) {
		for i := 0; i < n*int(txPerBlock); i++ {
			tx := db.Begin("bench")
			if err := tx.Insert(lt, fig8Row(next)); err != nil {
				b.Fatal(err)
			}
			next++
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	addBlocks(blocks)
	if _, err := db.GenerateDigest(); err != nil { // close the tail block
		b.Fatal(err)
	}
	return db, lt, next
}

// BenchmarkAuditIncremental: each iteration closes K=8 new blocks and
// runs one audit cycle. The N= variants differ only in pre-existing
// history; flat ns/op across them is the O(K) result.
func BenchmarkAuditIncremental(b *testing.B) {
	const txPerBlock = 8
	const deltaBlocks = 8
	for _, blocks := range []int{64, 512} {
		b.Run(fmt.Sprintf("N=%d", blocks), func(b *testing.B) {
			db, lt, next := auditLedger(b, txPerBlock, blocks)
			aud, err := db.NewAuditor(sqlledger.AuditorOptions{}) // SampleFraction 0: pure O(K) path
			if err != nil {
				b.Fatal(err)
			}
			if st := aud.RunCycle(); !st.Ok { // catch the watermark up once
				b.Fatalf("catch-up: %v", st.LastReport)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < deltaBlocks*txPerBlock; j++ {
					tx := db.Begin("bench")
					if err := tx.Insert(lt, fig8Row(next)); err != nil {
						b.Fatal(err)
					}
					next++
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := db.GenerateDigest(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if st := aud.RunCycle(); !st.Ok {
					b.Fatalf("audit: %v", st.LastReport)
				}
			}
		})
	}
}

// BenchmarkAuditSampled prices one sampling sweep re-checking ~10% of
// cold history per cycle on a settled ledger.
func BenchmarkAuditSampled(b *testing.B) {
	const txPerBlock = 8
	db, _, _ := auditLedger(b, txPerBlock, 128)
	aud, err := db.NewAuditor(sqlledger.AuditorOptions{SampleFraction: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	if st := aud.RunCycle(); !st.Ok {
		b.Fatalf("catch-up: %v", st.LastReport)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := aud.RunCycle(); !st.Ok {
			b.Fatalf("audit: %v", st.LastReport)
		}
	}
}
