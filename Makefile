# Tier-1: everything must build and every test must pass.
.PHONY: test
test:
	go build ./... && go test ./...

# Race-enabled run of the core verification tests: the sharded scans,
# worker-pool hashing and single-pass index checks are concurrent, so
# exercise them under the race detector.
.PHONY: test-race-verify
test-race-verify:
	go test -race ./internal/core/ -run Verify
	go test -race ./internal/engine/ -run Scan

# Verification benchmarks (Figure 9 + the parallelism ablation), with
# allocation stats so hot-path regressions are visible.
.PHONY: bench-verify
bench-verify:
	go test -run - -bench 'Figure9|VerificationParallelism' -benchmem .
	go test -run - -bench 'HashRow' -benchmem ./internal/serial/

.PHONY: check
check: test test-race-verify
