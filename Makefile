# Tier-1: everything must build and every test must pass.
.PHONY: test
test:
	go build ./... && go test ./...

# Fail if any file is not gofmt-clean.
.PHONY: fmt-check
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: vet
vet:
	go vet ./...

# Race-enabled run of the core verification tests: the sharded scans,
# worker-pool hashing and single-pass index checks are concurrent, so
# exercise them under the race detector.
.PHONY: test-race-verify
test-race-verify:
	go test -race ./internal/core/ -run Verify
	go test -race ./internal/engine/ -run Scan

# Race-enabled commit stress: N goroutines hammering the staged
# group-commit pipeline at every layer (WAL group committer, engine commit
# stages, ledger ordinal assignment and crash recovery).
.PHONY: test-race-commit
test-race-commit:
	go test -race ./internal/wal/ -run Group
	go test -race ./internal/engine/ -run Commit
	go test -race ./internal/core/ -run 'ConcurrentCommit|GroupCommitCrash'

# Race-enabled observability tests: the registry, histogram and tracer
# are hit from every commit goroutine, so prove the layer race-free and
# exercise the instrumented end-to-end path under -race too. The trace
# runs cover the tail-sampling store, cross-shard trace propagation and
# the exemplar → /debug/trace?id= walk under concurrent committers.
.PHONY: test-race-obs
test-race-obs:
	go test -race ./internal/obs/
	go test -race ./internal/core/ -run 'Observability|Trace'
	go test -race ./internal/workload/ -run Drive
	go test -race . -run TraceEndToEnd

# Tracing-overhead gate: per-transaction tracing must cost ≤3% on
# durable commits (backs BenchmarkInstrumentationOverhead's
# trace=on/trace=off split). Race-free and run alone on purpose — the
# gate measures wall-clock ratios, which the race detector and
# concurrent test packages distort; SQLLEDGER_TRACE_GATE=1 arms the
# strict 3% bound (the test self-loosens inside `go test ./...`).
.PHONY: trace-gate
trace-gate:
	SQLLEDGER_TRACE_GATE=1 go test -run TracingOverheadGate -v .

# Race-enabled health/audit observability tests: the event log ring, the
# runtime sampler, the health checker's cross-mutex reads and the verify
# progress sink all run concurrently with commits and verification.
.PHONY: test-race-health
test-race-health:
	go test -race ./internal/obs/ -run 'Event|Runtime|Tracer|Server'
	go test -race ./internal/core/ -run 'Health|VerifyProgress|AuditEvent|OpsServer'

# Smoke-test the live metrics endpoint: a short ledgerbench commit run
# serving /metrics on an ephemeral port; the binary self-checks that the
# endpoint answers with the headline series before exiting.
.PHONY: bench-smoke
bench-smoke:
	go run ./cmd/ledgerbench -exp commit -duration 1s \
		-metrics-addr 127.0.0.1:0 -stats-every 2s

# Verification benchmarks (Figure 9 + the parallelism ablation), with
# allocation stats so hot-path regressions are visible.
.PHONY: bench-verify
bench-verify:
	go test -run - -bench 'Figure9|VerificationParallelism' -benchmem .
	go test -run - -bench 'HashRow' -benchmem ./internal/serial/

# Commit-scaling benchmark: group vs. serialized pipeline under SyncFull.
.PHONY: bench-commit
bench-commit:
	go test -run - -bench CommitConcurrent -benchtime 2000x .

# Ingest-scaling gate + benchmark: serial inserts vs. the InsertBatch
# worker pool at 1/2/4/8 hashing workers. Race-free on purpose — the
# scaling gate measures wall-clock ratios and the allocation gates use
# testing.AllocsPerRun, both of which the race detector distorts.
.PHONY: bench-ingest
bench-ingest:
	go test -run 'IngestScaling' -v .
	go test -run 'Alloc' ./internal/serial/ ./internal/core/
	go test -run - -bench 'Ingest' -benchmem .

# Read-scaling gate + benchmark: MVCC snapshot readers at 1/2/4/8 clients
# with 2 update writers always active. Race-free on purpose — the gate
# measures wall-clock ratios, which the race detector distorts.
.PHONY: bench-read
bench-read:
	go test -run 'ReadScaling' -v .
	go test -run - -bench 'ReadConcurrent' -benchtime 200x .

# Race-enabled MVCC read-path audit: snapshot readers, writers and the
# version GC racing over shared version chains, the lock-table
# timeout-vs-release window, and the read-receipt build running against
# live commits.
.PHONY: test-race-read
test-race-read:
	go test -race ./internal/engine/ -run 'Snapshot|VersionGC|LockTimeoutReleaseRace'
	go test -race ./internal/core/ -run 'ReadReceipt'
	go test -race . -run 'ReadScaling'

# Race-enabled always-on auditor tests: the background audit loop runs
# concurrently with live committers, watermark saves race reopen, and the
# sharded fan-out re-checks every shard head per cycle — prove the whole
# surface race-free, including the ops endpoints it feeds.
.PHONY: test-race-audit
test-race-audit:
	go test -race ./internal/core/ -run 'Auditor|AuditOps|ShardedOps'

# Auditor cost model: the incremental cycle must stay flat as ledger depth
# grows (the O(K) result — N=64 vs N=512 with the same K=8 delta), plus
# the sampled cold-history sweep and the ledgerbench comparison table
# (full verify vs. catch-up vs. incremental vs. sampled).
.PHONY: bench-audit
bench-audit:
	go test -run - -bench 'BenchmarkAudit' -benchmem .
	go run ./cmd/ledgerbench -exp audit

# Race-enabled sharded-ledger audit: the engine's two-phase commit
# (prepare/commit/abort and in-doubt recovery), cross-shard transactions
# hammering the coordinator's decision log, and super-block closes racing
# live multi-client ingest.
.PHONY: test-race-shard
test-race-shard:
	go test -race ./internal/engine/ -run 'Prepare|ReadOnlyPrepare'
	go test -race ./internal/core/ -run 'Sharded'

# Shard-scaling gate + benchmark: the fixed 4-client pool at 1/2/4
# shards, plus the digest-equality and super-root reproducibility checks.
# Race-free on purpose — the gate measures wall-clock ratios, which the
# race detector distorts (test-race-shard audits the same paths).
.PHONY: bench-shard
bench-shard:
	go test -run 'ShardIngestScaling' -v .
	go test -run - -bench 'IngestSharded' -benchtime 20x .

# Race-enabled fast-restart audit: the pipelined WAL reader's
# producer/decode-pool/reassembly stages, parallel redo workers and the
# parallel snapshot codec under -race, plus online checkpoints racing
# live committers and the crash-image equivalence check (serial vs.
# parallel replay must produce identical digests and verify green).
.PHONY: test-race-recover
test-race-recover:
	go test -race ./internal/wal/ -run 'Pipelined'
	go test -race ./internal/engine/ -run 'Recovery|Checkpoint|Snapshot'
	go test -race . -run 'RecoverySerialParallelEquivalence|RecoveryScaling'

# Recovery-scaling gate + benchmark: full-WAL restart at 1/2/4/8 replay
# workers over one crash image, plus the ledgerbench restart table.
# Race-free on purpose — the gate measures wall-clock ratios, which the
# race detector distorts (test-race-recover audits the same paths).
.PHONY: bench-recover
bench-recover:
	go test -run 'RecoveryScaling' -v .
	go test -run - -bench 'BenchmarkRecovery' -benchtime 3x .
	go run ./cmd/ledgerbench -exp recover

.PHONY: check
check: fmt-check vet test test-race-verify test-race-commit test-race-obs test-race-health test-race-read test-race-shard test-race-audit test-race-recover
