// Package sqlledger is a from-scratch Go reproduction of "SQL Ledger:
// Cryptographically Verifiable Data in Azure SQL Database" (Antonopoulos
// et al., SIGMOD 2021): an embedded relational database whose *ledger
// tables* make data tamper-evident.
//
// Every DML operation on a ledger table is SHA-256 hashed into a
// per-transaction Merkle tree; transaction entries are chained into
// blocks forming the database ledger; compact *digests* of the ledger can
// be exported to trusted storage and later used to cryptographically
// verify that nothing — not even a DBA or an attacker writing directly to
// storage — has modified the data (forward integrity).
//
// Quickstart:
//
//	db, _ := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
//	defer db.Close()
//
//	schema := sqlledger.MustSchema([]sqlledger.Column{
//		sqlledger.Col("name", sqlledger.TypeNVarChar),
//		sqlledger.Col("balance", sqlledger.TypeBigInt),
//	}, "name")
//	accounts, _ := db.CreateLedgerTable("accounts", schema, sqlledger.Updateable)
//
//	tx := db.Begin("alice")
//	tx.Insert(accounts, sqlledger.Row{sqlledger.NVarChar("nick"), sqlledger.BigInt(100)})
//	tx.Commit()
//
//	digest, _ := db.GenerateDigest() // store this somewhere trusted
//	report, _ := db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
//	fmt.Println(report.Ok())
//
// The heavy lifting lives in the internal packages: internal/core (the
// ledger), internal/engine (the relational engine), internal/merkle,
// internal/serial, internal/wal, internal/blobstore. This package is the
// stable facade that examples, tools and benchmarks build on.
package sqlledger

import (
	"net/http"
	"time"

	"sqlledger/internal/blobstore"
	"sqlledger/internal/core"
	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
	"sqlledger/internal/sql"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Core types, re-exported.
type (
	// DB is a database with SQL Ledger enabled.
	DB = core.LedgerDB
	// Tx is a ledger-aware transaction.
	Tx = core.Tx
	// ReadTx is a ledger-aware snapshot read transaction: reads never take
	// row locks and see a consistent applied-commit cut. Begun via
	// BeginReadOnlyForReceipt, it additionally accumulates a read set
	// that CloseWithReceipt turns into a verifiable ReadReceipt.
	ReadTx = core.ReadTx
	// ReadReceipt proves offline that every row a snapshot read returned
	// is committed ledger content.
	ReadReceipt = core.ReadReceipt
	// LedgerTable is a handle to a ledger table.
	LedgerTable = core.LedgerTable
	// Digest is an exported database digest.
	Digest = core.Digest
	// Report is a verification report.
	Report = core.Report
	// Issue is one verification finding.
	Issue = core.Issue
	// VerifyOptions tunes verification.
	VerifyOptions = core.VerifyOptions
	// VerifyTiming breaks down where a verification run spent its time.
	VerifyTiming = core.Timing
	// Receipt is a non-repudiation transaction receipt.
	Receipt = core.Receipt
	// LedgerViewRow is one row of a table's ledger view.
	LedgerViewRow = core.LedgerViewRow
	// TableOperation is one CREATE/DROP entry of the metadata ledger view.
	TableOperation = core.TableOperation
	// DigestUploader periodically uploads digests to immutable storage.
	DigestUploader = core.DigestUploader
	// RepairReport summarizes a tamper-repair run (§3.7).
	RepairReport = core.RepairReport
	// RepairAction is one divergence found/fixed during repair.
	RepairAction = core.RepairAction
	// SignedDigest is a digest signed with an organization's key (§2.4).
	SignedDigest = core.SignedDigest

	// ShardedDB is a ledger database hash-partitioned across N shard
	// instances — independent engines, WALs and block chains — under one
	// signed super-root (Options.Shards, OpenSharded).
	ShardedDB = core.ShardedDB
	// ShardedTx is a transaction over a sharded database: single-shard
	// transactions commit through the ordinary pipeline, cross-shard ones
	// with two-phase commit.
	ShardedTx = core.ShardedTx
	// ShardedTable is a ledger table partitioned across every shard.
	ShardedTable = core.ShardedTable
	// SuperBlock is the sharded ledger's digest of digests: a signed
	// Merkle root over the per-shard chain heads.
	SuperBlock = core.SuperBlock
	// ShardHead is one shard's chain head inside a super-block.
	ShardHead = core.ShardHead
	// ShardedReport aggregates per-shard verification results.
	ShardedReport = core.ShardedReport
	// ShardReport is one shard's slice of a sharded verification.
	ShardReport = core.ShardReport

	// Options configures Open.
	Options = core.Options
	// GroupCommitOptions tunes the WAL group committer
	// (Options.GroupCommit): MaxBatch and MaxDelay bound write groups,
	// Disabled reverts to the serialized commit path.
	GroupCommitOptions = wal.GroupConfig
	// CommitStats reports commit-durability amortization counters
	// (DB.CommitStats): commits and write groups through the group
	// committer, and WAL fsyncs.
	CommitStats = core.CommitStats

	// MetricsRegistry collects every metric and span the database records
	// (Options.Obs). Share one registry across databases to aggregate, or
	// pass DisabledMetrics() for the metrics-off ablation path.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every metric
	// (DB.Snapshot), with p50/p95/p99 precomputed for histograms.
	MetricsSnapshot = obs.Snapshot
	// MetricLabel is one metric dimension, e.g. {stage, apply}.
	MetricLabel = obs.Label
	// SpanRecord is one finished trace span (block close, digest,
	// verification run) from the registry's ring buffer.
	SpanRecord = obs.SpanRecord
	// MetricsServer is a live HTTP server exposing /metrics (Prometheus
	// text), /debug/spans + /debug/events (JSON) and /debug/pprof.
	MetricsServer = obs.Server
	// Event is one structured ledger audit event (block closed, digest
	// uploaded, verification finished, …) from the registry's event log.
	Event = obs.Event
	// EventLog is the registry's bounded structured event log
	// (reg.Events()), mirrored to /debug/events.
	EventLog = obs.EventLog

	// Trace is one transaction's in-flight end-to-end trace. Every Begin
	// creates one (when tracing is on); the engine, WAL and commit
	// pipeline contribute child spans; annotate it with application
	// context via Tx.Trace().SetAttr.
	Trace = obs.Trace
	// TraceID identifies a trace; histogram exemplars carry it and
	// /debug/trace?id= resolves it.
	TraceID = obs.TraceID
	// TraceRecord is a finished, retained trace: the root plus its span
	// waterfall, served at /debug/trace.
	TraceRecord = obs.TraceRecord
	// TraceSpan is one span of a finished trace.
	TraceSpan = obs.TraceSpan
	// TraceStore is the registry's tail-sampling trace retention ring
	// (reg.Traces()): slow and error traces are always kept, fast ones
	// sampled.
	TraceStore = obs.TraceStore
	// SlowQuery is one structured slow-query entry (statement
	// fingerprint, tables, rows, lock-wait and fsync-wait durations),
	// served at /debug/slow.
	SlowQuery = obs.SlowQuery

	// Health is the typed health status served at /healthz.
	Health = core.Health
	// HealthState is the coarse health status (healthy/degraded/unhealthy).
	HealthState = core.HealthState
	// HealthThresholds tunes when a HealthChecker degrades the status.
	HealthThresholds = core.HealthThresholds
	// HealthChecker aggregates chain height, digest lag, queue depth and
	// the last verification outcome (DB.NewHealthChecker).
	HealthChecker = core.HealthChecker
	// LedgerDebug is the /debug/ledger snapshot (DB.DebugInfo).
	LedgerDebug = core.LedgerDebug
	// VerifyProgress is one streaming progress update from a verification
	// run (VerifyOptions.Progress).
	VerifyProgress = core.VerifyProgress
	// BlockRange restricts a Verify run to an inclusive block range
	// (VerifyOptions.Blocks).
	BlockRange = core.BlockRange

	// Auditor is the always-on background verifier (DB.NewAuditor): a
	// persisted verified-through watermark, incremental re-verification
	// of new blocks, sampling sweeps over cold history and tamper
	// localization down to block/transaction/row.
	Auditor = core.Auditor
	// AuditorOptions tunes an auditor's cycle interval and sampling.
	AuditorOptions = core.AuditorOptions
	// AuditStatus is an auditor snapshot, served at /debug/audit.
	AuditStatus = core.AuditStatus
	// TamperReport localizes a detected ledger mutation.
	TamperReport = core.TamperReport
	// AuditHealth folds auditor state into /healthz.
	AuditHealth = core.AuditHealth
	// ShardedAuditor fans one auditor per shard under the super-root
	// (ShardedDB.NewAuditor).
	ShardedAuditor = core.ShardedAuditor
	// ShardedAuditStatus aggregates per-shard audit state.
	ShardedAuditStatus = core.ShardedAuditStatus
	// ShardedHealth is the sharded /healthz status (worst shard wins,
	// super-block freshness included).
	ShardedHealth = core.ShardedHealth
	// ShardedHealthChecker evaluates every shard plus super-block
	// freshness (ShardedDB.NewHealthChecker).
	ShardedHealthChecker = core.ShardedHealthChecker
	// ShardedDebug is the sharded /debug/ledger snapshot.
	ShardedDebug = core.ShardedDebug

	// Schema describes a table's columns and primary key.
	Schema = sqltypes.Schema
	// Column describes one column.
	Column = sqltypes.Column
	// Row is an ordered tuple of values.
	Row = sqltypes.Row
	// Value is a typed nullable SQL value.
	Value = sqltypes.Value
	// TypeID identifies a SQL column type.
	TypeID = sqltypes.TypeID

	// BlobStore is an immutable, append-only blob store for digests.
	BlobStore = blobstore.Store

	// SQLSession executes SQL statements against a ledger database.
	SQLSession = sql.Session
	// SQLResult is the outcome of one SQL statement.
	SQLResult = sql.Result
)

// Ledger table kinds.
const (
	// Updateable ledger tables support all DML; superseded versions move
	// to a history table.
	Updateable = engine.LedgerUpdateable
	// AppendOnly ledger tables reject updates and deletes.
	AppendOnly = engine.LedgerAppendOnly
)

// Column types.
const (
	TypeBit       = sqltypes.TypeBit
	TypeTinyInt   = sqltypes.TypeTinyInt
	TypeSmallInt  = sqltypes.TypeSmallInt
	TypeInt       = sqltypes.TypeInt
	TypeBigInt    = sqltypes.TypeBigInt
	TypeFloat     = sqltypes.TypeFloat
	TypeDecimal   = sqltypes.TypeDecimal
	TypeChar      = sqltypes.TypeChar
	TypeVarChar   = sqltypes.TypeVarChar
	TypeNVarChar  = sqltypes.TypeNVarChar
	TypeBinary    = sqltypes.TypeBinary
	TypeVarBinary = sqltypes.TypeVarBinary
	TypeDateTime  = sqltypes.TypeDateTime
	TypeUniqueID  = sqltypes.TypeUniqueID
)

// SyncMode selects the WAL durability mode.
type SyncMode = wal.SyncMode

// WAL durability modes.
const (
	// SyncBuffered flushes to the OS on commit (default).
	SyncBuffered = wal.SyncBuffered
	// SyncFull fsyncs on every commit.
	SyncFull = wal.SyncFull
	// SyncNone buffers in user space until checkpoint/close.
	SyncNone = wal.SyncNone
)

// DefaultBlockSize is the paper's production block size (100K transactions
// per block).
const DefaultBlockSize = core.DefaultBlockSize

// Open opens (creating if necessary) a ledger database.
func Open(opts Options) (*DB, error) { return core.Open(opts) }

// OpenSharded opens (creating if necessary) a sharded ledger database:
// Options.Shards engine instances under one signed super-root.
// Shards <= 1 keeps the single-instance on-disk layout.
func OpenSharded(opts Options) (*ShardedDB, error) { return core.OpenSharded(opts) }

// ParseSuperBlock parses a super-block JSON document.
func ParseSuperBlock(b []byte) (*SuperBlock, error) { return core.ParseSuperBlock(b) }

// CheckSuperBlock verifies a super-block's internal consistency and its
// ed25519 signature (no shard data is touched).
var CheckSuperBlock = core.CheckSuperBlock

// VerifySuperBlock verifies a sharded database against a signed
// super-block, shard-parallel: each shard's head digest is proof-checked
// under the super-root, then the shard is fully verified against it.
var VerifySuperBlock = core.VerifySuperBlock

// NewMetricsRegistry returns an enabled metrics registry to pass as
// Options.Obs (share one across databases to aggregate their metrics).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DisabledMetrics returns an inert registry: every recording reduces to
// one branch. It is the metrics-off baseline for overhead measurements.
func DisabledMetrics() *MetricsRegistry { return obs.Disabled() }

// StartMetricsServer serves reg over HTTP at addr ("127.0.0.1:0" picks a
// free port): /metrics in Prometheus text format, /debug/spans and
// /debug/events as JSON, /debug/pprof for profiling.
func StartMetricsServer(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return obs.StartServer(addr, reg)
}

// StartOpsServer serves db's full operational surface at addr: the
// registry endpoints plus /healthz (with default thresholds) and
// /debug/ledger. Equivalent to db.StartOpsServer(addr).
func StartOpsServer(addr string, db *DB) (*MetricsServer, error) {
	return db.StartOpsServer(addr)
}

// ServeOps serves an arbitrary ops handler — typically DB.OpsHandler or
// ShardedDB.OpsHandler built with custom HealthThresholds — at addr.
func ServeOps(addr string, h http.Handler) (*MetricsServer, error) {
	return obs.StartServerHandler(addr, h)
}

// StartRuntimeSampler samples Go runtime metrics (goroutines, heap, GC
// pauses) into reg every interval; call the returned stop function to
// end sampling. The /metrics endpoint also samples once per scrape.
func StartRuntimeSampler(reg *MetricsRegistry, every time.Duration) (stop func()) {
	return obs.StartRuntimeSampler(reg, every)
}

// RestoreToTime point-in-time-restores the database in srcDir into dstDir
// as of targetTS (unix nanoseconds), starting a new incarnation.
func RestoreToTime(srcDir, dstDir string, targetTS int64) error {
	return core.RestoreToTime(srcDir, dstDir, targetTS)
}

// RepairFromBackup repairs db in place from a verified backup (§3.7):
// rows that were modified, injected or deleted by a storage-level
// attacker are restored to the backup's state. The backup must verify
// against the provided digests first. With dryRun, divergences are only
// reported.
func RepairFromBackup(db, backup *DB, digests []Digest, dryRun bool) (*RepairReport, error) {
	return core.RepairFromBackup(db, backup, digests, dryRun)
}

// NewDigestUploader creates a periodic digest uploader writing to store.
func NewDigestUploader(db *DB, store BlobStore) *DigestUploader {
	return core.NewDigestUploader(db, store)
}

// NewSQLSession opens a SQL session: CREATE TABLE ... WITH (LEDGER = ON),
// DML, SELECT (including "<table>_ledger" views), transactions with
// savepoints, GENERATE DIGEST and VERIFY. Sessions are not safe for
// concurrent use; open one per connection.
func NewSQLSession(db *DB, user string) *SQLSession { return sql.NewSession(db, user) }

// NewMemoryBlobStore returns an in-memory immutable blob store.
func NewMemoryBlobStore() BlobStore { return blobstore.NewMemory() }

// NewDirBlobStore returns a file-backed immutable blob store rooted at dir.
func NewDirBlobStore(dir string) (BlobStore, error) { return blobstore.NewDir(dir) }

// VerifyReceipt checks a transaction receipt offline against the signer's
// public key; it needs no database access.
var VerifyReceipt = core.VerifyReceipt

// ParseDigest parses a digest JSON document.
func ParseDigest(b []byte) (Digest, error) { return core.ParseDigest(b) }

// SignDigest signs a digest with the organization's private key (§2.4),
// so partners and auditors can authenticate it.
var SignDigest = core.SignDigest

// VerifySignedDigest checks a signed digest's authenticity.
var VerifySignedDigest = core.VerifySignedDigest

// ParseSignedDigest parses a signed digest JSON document.
func ParseSignedDigest(b []byte) (SignedDigest, error) { return core.ParseSignedDigest(b) }

// ParseReceipt parses a receipt JSON document.
func ParseReceipt(b []byte) (Receipt, error) { return core.ParseReceipt(b) }

// VerifyReadReceipt checks a snapshot-read receipt offline against the
// signer's public key; it needs no database access.
var VerifyReadReceipt = core.VerifyReadReceipt

// ParseReadReceipt parses a read receipt JSON document.
func ParseReadReceipt(b []byte) (ReadReceipt, error) { return core.ParseReadReceipt(b) }

// Schema construction helpers.

// NewSchema builds a schema from columns and primary-key column names.
func NewSchema(cols []Column, keyNames ...string) (*Schema, error) {
	return sqltypes.NewSchema(cols, keyNames...)
}

// MustSchema is NewSchema that panics on error.
func MustSchema(cols []Column, keyNames ...string) *Schema {
	return sqltypes.MustSchema(cols, keyNames...)
}

// Col declares a non-nullable column.
func Col(name string, t TypeID) Column { return sqltypes.Col(name, t) }

// NullableCol declares a nullable column.
func NullableCol(name string, t TypeID) Column { return sqltypes.NullableCol(name, t) }

// VarCol declares a variable-length column with a declared max length.
func VarCol(name string, t TypeID, length int) Column { return sqltypes.VarCol(name, t, length) }

// DecimalCol declares a DECIMAL column.
func DecimalCol(name string, prec, scale int) Column { return sqltypes.DecimalCol(name, prec, scale) }

// Value constructors.

// Null returns the NULL value of type t.
func Null(t TypeID) Value { return sqltypes.NewNull(t) }

// Bit returns a BIT value.
func Bit(b bool) Value { return sqltypes.NewBit(b) }

// TinyInt returns a TINYINT value.
func TinyInt(i uint8) Value { return sqltypes.NewTinyInt(i) }

// SmallInt returns a SMALLINT value.
func SmallInt(i int16) Value { return sqltypes.NewSmallInt(i) }

// Int returns an INT value.
func Int(i int32) Value { return sqltypes.NewInt(i) }

// BigInt returns a BIGINT value.
func BigInt(i int64) Value { return sqltypes.NewBigInt(i) }

// Float returns a FLOAT value.
func Float(f float64) Value { return sqltypes.NewFloat(f) }

// Decimal returns a DECIMAL value from its scaled integer representation.
func Decimal(scaled int64) Value { return sqltypes.NewDecimal(scaled) }

// Char returns a CHAR value.
func Char(s string) Value { return sqltypes.NewChar(s) }

// VarChar returns a VARCHAR value.
func VarChar(s string) Value { return sqltypes.NewVarChar(s) }

// NVarChar returns an NVARCHAR value.
func NVarChar(s string) Value { return sqltypes.NewNVarChar(s) }

// Binary returns a BINARY value.
func Binary(b []byte) Value { return sqltypes.NewBinary(b) }

// VarBinary returns a VARBINARY value.
func VarBinary(b []byte) Value { return sqltypes.NewVarBinary(b) }

// DateTime returns a DATETIME value.
func DateTime(t time.Time) Value { return sqltypes.NewDateTime(t) }
