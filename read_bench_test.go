// Read-scaling benchmark and gate for the MVCC snapshot read path:
// read-only transactions pin a commit timestamp and read row versions
// without touching the lock table, so rows-read/s scales with reader
// count even while writers churn the same rows under 2PL (see DESIGN.md
// decision 11).
package sqlledger_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger"
	"sqlledger/internal/workload"
)

// readBenchRows is the preloaded table size; large enough that random
// point reads miss caches, small enough to load quickly.
const readBenchRows = 20_000

func openReadDB(tb testing.TB, dir string) *sqlledger.DB {
	tb.Helper()
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: dir, Name: "read",
		BlockSize:   sqlledger.DefaultBlockSize,
		LockTimeout: 5 * time.Second,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

// startWriters runs n background single-row-update clients until the
// returned stop function is called.
func startWriters(w *workload.ReadMostly, n int) (stop func() int64) {
	var halt atomic.Bool
	var writes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			op := w.Writer(int64(g + 1))
			for !halt.Load() {
				if op() == nil {
					writes.Add(1)
				}
			}
		}(g)
	}
	return func() int64 {
		halt.Store(true)
		wg.Wait()
		return writes.Load()
	}
}

// runReadTrial runs txs reader transactions across `readers` clients with
// two writers active and returns the elapsed wall clock.
func runReadTrial(tb testing.TB, w *workload.ReadMostly, readers, txs int) time.Duration {
	tb.Helper()
	stop := startWriters(w, 2)
	res := workload.DriveN(readers, txs, func(id int) func() error {
		return w.Reader(int64(readers*1000 + id + 1))
	})
	stop()
	if res.Errors > 0 {
		tb.Fatalf("read trial at %d readers: %d errors: %v", readers, res.Errors, res.Err)
	}
	return res.Elapsed
}

// BenchmarkReadConcurrent measures snapshot read throughput at 1/2/4/8
// reader clients with 2 update writers always active. One op is one
// read transaction of workload.ReadsPerTx point reads; the custom metric
// reports rows/s.
func BenchmarkReadConcurrent(b *testing.B) {
	db := openReadDB(b, b.TempDir())
	defer db.Close()
	w, err := workload.NewReadMostly(db, readBenchRows)
	if err != nil {
		b.Fatal(err)
	}
	for _, readers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("readers-%d", readers), func(b *testing.B) {
			stop := startWriters(w, 2)
			b.ResetTimer()
			res := workload.DriveN(readers, b.N, func(id int) func() error {
				return w.Reader(int64(readers*1000 + id + 1))
			})
			b.StopTimer()
			stop()
			if res.Errors > 0 {
				b.Fatalf("%d errors: %v", res.Errors, res.Err)
			}
			b.ReportMetric(float64(res.Commits)*workload.ReadsPerTx/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// TestReadScaling gates the MVCC read path: with 2 writers active, 4
// reader clients must complete a fixed budget of read transactions at
// least 2x faster than 1 reader client. Like TestIngestScaling, the
// wall-clock gate needs real parallelism, so it is skipped below 4 CPUs
// and under the race detector.
func TestReadScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	if raceEnabled {
		t.Skip("throughput gate skipped under -race")
	}
	if ncpu := runtime.GOMAXPROCS(0); ncpu < 4 {
		t.Skipf("throughput gate needs >=4 CPUs, have %d", ncpu)
	}
	db := openReadDB(t, t.TempDir())
	defer db.Close()
	w, err := workload.NewReadMostly(db, readBenchRows)
	if err != nil {
		t.Fatal(err)
	}
	const txs = 4000
	runReadTrial(t, w, 1, txs/4) // warmup
	// Best of three trials per side to damp scheduler noise.
	var serialDur, parallelDur time.Duration
	for trial := 0; trial < 3; trial++ {
		d := runReadTrial(t, w, 1, txs)
		if trial == 0 || d < serialDur {
			serialDur = d
		}
		d = runReadTrial(t, w, 4, txs)
		if trial == 0 || d < parallelDur {
			parallelDur = d
		}
	}
	speedup := float64(serialDur) / float64(parallelDur)
	t.Logf("1 reader %v, 4 readers %v, speedup %.2fx (2 writers active)", serialDur, parallelDur, speedup)
	if speedup < 2.0 {
		t.Fatalf("read speedup %.2fx at 4 readers, want >= 2x (1 reader %v, 4 readers %v)",
			speedup, serialDur, parallelDur)
	}
}
