package sqlledger_test

import (
	"testing"

	"sqlledger"
)

// newTestDB opens a ledger database in a temp dir with a small block size
// so tests exercise multi-block behaviour.
func newTestDB(t *testing.T, blockSize uint32) *sqlledger.DB {
	t.Helper()
	db, err := sqlledger.Open(sqlledger.Options{
		Dir:       t.TempDir(),
		Name:      "testdb",
		BlockSize: blockSize,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func accountsSchema() *sqlledger.Schema {
	return sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("name", sqlledger.TypeNVarChar),
		sqlledger.Col("balance", sqlledger.TypeBigInt),
	}, "name")
}

func TestSmokeEndToEnd(t *testing.T) {
	db := newTestDB(t, 4)
	accounts, err := db.CreateLedgerTable("accounts", accountsSchema(), sqlledger.Updateable)
	if err != nil {
		t.Fatalf("create ledger table: %v", err)
	}

	tx := db.Begin("alice")
	if err := tx.Insert(accounts, sqlledger.Row{sqlledger.NVarChar("nick"), sqlledger.BigInt(100)}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tx.Insert(accounts, sqlledger.Row{sqlledger.NVarChar("john"), sqlledger.BigInt(500)}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	tx = db.Begin("bob")
	if err := tx.Update(accounts, sqlledger.Row{sqlledger.NVarChar("nick"), sqlledger.BigInt(50)}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := tx.Delete(accounts, sqlledger.NVarChar("john")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	digest, err := db.GenerateDigest()
	if err != nil {
		t.Fatalf("digest: %v", err)
	}

	rep, err := db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("verification should pass:\n%s", rep)
	}

	// Tamper with a balance directly in storage; verification must fail.
	eng := db.Engine()
	var key []byte
	accounts.Table().Scan(func(k []byte, _ sqlledger.Row) bool {
		key = append([]byte(nil), k...)
		return false
	})
	err = eng.TamperUpdateRow(accounts.Table(), key, func(r sqlledger.Row) sqlledger.Row {
		r[1] = sqlledger.BigInt(999999)
		return r
	}, true)
	if err != nil {
		t.Fatalf("tamper: %v", err)
	}
	rep, err = db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.Ok() {
		t.Fatalf("verification should detect tampering:\n%s", rep)
	}
}
