package sqlledger_test

// End-to-end acceptance for the transaction tracing pipeline: a slow
// durable commit under concurrent load must yield a retained trace that
// (a) is reachable from a histogram exemplar in /metrics, (b) renders a
// non-empty waterfall at /debug/trace?id=, (c) appears in /debug/slow
// with its lock-wait attribution, and (d) accounts for its time — the
// top-level child spans must sum to at least 90% of the root duration.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlledger"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestTraceEndToEnd(t *testing.T) {
	reg := sqlledger.NewMetricsRegistry()
	reg.Traces().SetSlowThreshold(40 * time.Millisecond)
	reg.Traces().SetSampleRate(0) // only slowness may retain

	db, err := sqlledger.Open(sqlledger.Options{
		Dir: t.TempDir(), Name: "trace",
		BlockSize:   sqlledger.DefaultBlockSize,
		Sync:        sqlledger.SyncFull, // the slow commit must be durable
		LockTimeout: 5 * time.Second,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := sqlledger.StartMetricsServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	seed := db.Begin("setup")
	if err := seed.Insert(lt, fig8Row(1)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	// Transaction A locks row 1 and holds it ~100ms; transaction B
	// updates the same row and spends that time in lock wait, making it
	// the slow trace under test. Meanwhile background writers commit
	// other rows, so the trace is produced under concurrent load.
	txA := db.Begin("holder")
	if err := txA.Update(lt, fig8Row(1)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin(fmt.Sprintf("bg-%d", w))
				if err := tx.Insert(lt, fig8Row(int64(1000+w*100000+i))); err != nil {
					tx.Rollback()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}

	releaseDone := make(chan error, 1)
	go func() {
		time.Sleep(100 * time.Millisecond)
		releaseDone <- txA.Commit()
	}()

	txB := db.Begin("slow")
	want := txB.Trace().ID()
	if want == 0 {
		t.Fatal("transaction has no trace")
	}
	txB.Trace().SetAttr("statement", "update t")
	if err := txB.Update(lt, fig8Row(1)); err != nil {
		t.Fatalf("contended update: %v", err)
	}
	if err := txB.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-releaseDone; err != nil {
		t.Fatalf("holder commit: %v", err)
	}
	close(stop)
	wg.Wait()

	// (a) The lock-wait histogram's exemplars include B's trace ID: the
	// on-call path from a latency spike to its trace.
	_, metrics := httpGet(t, base+"/metrics")
	var exemplarIDs []string
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, "sqlledger_lock_wait_seconds_bucket") {
			continue
		}
		if _, exem, ok := strings.Cut(line, `# {trace_id="`); ok {
			id, _, _ := strings.Cut(exem, `"`)
			exemplarIDs = append(exemplarIDs, id)
		}
	}
	found := false
	for _, id := range exemplarIDs {
		if id == want.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not among lock-wait exemplars %v", want, exemplarIDs)
	}

	// (b) The exemplar's ID resolves to the retained trace.
	code, body := httpGet(t, base+"/debug/trace?id="+want.String())
	if code != http.StatusOK {
		t.Fatalf("/debug/trace?id=%s: HTTP %d: %s", want, code, body)
	}
	var rec sqlledger.TraceRecord
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	if rec.ID != want.String() || rec.Decision != "slow" {
		t.Fatalf("record id=%s decision=%s, want %s/slow", rec.ID, rec.Decision, want)
	}
	if rec.Duration < 40*time.Millisecond {
		t.Fatalf("slow trace lasted only %v", rec.Duration)
	}

	// (d) Time accounting: top-level children partition the root, so
	// their durations must sum to ≥90% of the root duration.
	var accounted time.Duration
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
		if sp.Parent == 0 {
			accounted += sp.Duration
		}
	}
	if accounted < rec.Duration*9/10 {
		t.Fatalf("top-level spans account for %v of %v (%.1f%%), want ≥90%%\nspans: %+v",
			accounted, rec.Duration, 100*float64(accounted)/float64(rec.Duration), rec.Spans)
	}
	for _, wantSpan := range []string{"lock_wait", "commit_wait"} {
		if !names[wantSpan] {
			t.Fatalf("trace missing %s span: %v", wantSpan, names)
		}
	}

	// The text waterfall renders non-empty with the dominant span.
	code, text := httpGet(t, base+"/debug/trace?id="+want.String()+"&format=text")
	if code != http.StatusOK || !strings.Contains(text, "lock_wait") {
		t.Fatalf("waterfall (HTTP %d):\n%s", code, text)
	}

	// (c) The slow-query log carries the trace with lock-wait blame.
	_, slowBody := httpGet(t, base+"/debug/slow")
	var slow []sqlledger.SlowQuery
	if err := json.Unmarshal([]byte(slowBody), &slow); err != nil {
		t.Fatalf("slow JSON: %v\n%s", err, slowBody)
	}
	var entry *sqlledger.SlowQuery
	for i := range slow {
		if slow[i].TraceID == want.String() {
			entry = &slow[i]
		}
	}
	if entry == nil {
		t.Fatalf("trace %s not in /debug/slow: %s", want, slowBody)
	}
	if entry.LockWait < 40*time.Millisecond {
		t.Fatalf("slow-query lock wait %v, want ≥40ms", entry.LockWait)
	}
	if entry.Statement != "update t" {
		t.Fatalf("slow-query statement %q", entry.Statement)
	}
}
