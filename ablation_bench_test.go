package sqlledger_test

// Ablation benchmarks for the design decisions DESIGN.md calls out:
// block size (§3.3.1 argues for large blocks), savepoint cost (§3.2.1
// argues the O(log N) streaming-tree state makes savepoints cheap), and
// the price of per-commit durability.

import (
	"crypto/ed25519"
	"fmt"
	"testing"
	"time"

	"sqlledger"
)

// BenchmarkBlockSize sweeps the ledger block size: small blocks close
// constantly (more block-hash work and system-table writes per tx), large
// blocks amortize it — the reason the paper uses 100K-transaction blocks.
func BenchmarkBlockSize(b *testing.B) {
	for _, size := range []uint32{1, 16, 1024, sqlledger.DefaultBlockSize} {
		b.Run(fmt.Sprintf("block=%d", size), func(b *testing.B) {
			db, err := sqlledger.Open(sqlledger.Options{
				Dir: b.TempDir(), Name: "bench", BlockSize: size,
				LockTimeout: 5 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin("bench")
				if err := tx.Insert(lt, fig8Row(int64(i))); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSavepoint measures savepoint creation inside a transaction
// that has already hashed many row versions: the streaming Merkle state
// is O(log N), so this must stay flat as the transaction grows.
func BenchmarkSavepoint(b *testing.B) {
	for _, preOps := range []int{0, 100, 10000} {
		b.Run(fmt.Sprintf("preOps=%d", preOps), func(b *testing.B) {
			db := benchDB(b)
			lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
			if err != nil {
				b.Fatal(err)
			}
			tx := db.Begin("bench")
			for i := 0; i < preOps; i++ {
				if err := tx.Insert(lt, fig8Row(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx.Savepoint()
			}
			b.StopTimer()
			tx.Rollback()
		})
	}
}

// BenchmarkSavepointRollback measures rolling back a savepoint spanning a
// few operations — the partial-rollback path §3.2.1 designs for.
func BenchmarkSavepointRollback(b *testing.B) {
	db := benchDB(b)
	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		b.Fatal(err)
	}
	tx := db.Begin("bench")
	for i := 0; i < 1000; i++ {
		if err := tx.Insert(lt, fig8Row(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tx.Savepoint()
		if err := tx.Insert(lt, fig8Row(int64(100000+i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.RollbackTo(sp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tx.Rollback()
}

// BenchmarkVerificationParallelism shows the gain from parallel
// verification (§3.4.2 leans on SQL Server's parallel query execution).
// Two dataset shapes, same total row count: eight evenly-populated tables
// (per-table fan-out suffices) and one large table (the TPC-C-like shape
// where only the intra-table sharded pipeline can use more than one core).
func BenchmarkVerificationParallelism(b *testing.B) {
	shapes := []struct {
		name    string
		nTables int
	}{
		{"tables=8", 8},
		{"tables=1", 1},
	}
	for _, shape := range shapes {
		db := benchDB(b)
		var tables []*sqlledger.LedgerTable
		for i := 0; i < shape.nTables; i++ {
			lt, err := db.CreateLedgerTable(fmt.Sprintf("t%d", i), fig8Schema(), sqlledger.Updateable)
			if err != nil {
				b.Fatal(err)
			}
			tables = append(tables, lt)
		}
		for i := 0; i < 2000; i++ {
			tx := db.Begin("bench")
			if err := tx.Insert(tables[i%shape.nTables], fig8Row(int64(i))); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		d, err := db.GenerateDigest()
		if err != nil {
			b.Fatal(err)
		}
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/parallelism=%d", shape.name, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{Parallelism: par})
					if err != nil || !rep.Ok() {
						b.Fatalf("verify: %v", err)
					}
				}
			})
		}
	}
}

// BenchmarkVerificationIndexes isolates invariant 5 cost as indexes are
// added: the single-pass check computes every index's entry keys in one
// base-table scan, so cost grows with rows + index entries rather than
// indexes × rows.
func BenchmarkVerificationIndexes(b *testing.B) {
	for _, nIdx := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("idx=%d", nIdx), func(b *testing.B) {
			db := benchDB(b)
			lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
			if err != nil {
				b.Fatal(err)
			}
			cols := []string{"a", "b", "c"}
			for i := 0; i < nIdx; i++ {
				if _, err := db.Engine().CreateIndex("t", fmt.Sprintf("ix%d", i), cols[i%len(cols)]); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 5000; i += 20 {
				tx := db.Begin("bench")
				for j := 0; j < 20; j++ {
					if err := tx.Insert(lt, fig8Row(int64(i+j))); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			d, err := db.GenerateDigest()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
				if err != nil || !rep.Ok() {
					b.Fatalf("verify: %v", err)
				}
			}
		})
	}
}

// BenchmarkDigestGeneration isolates digest generation itself (§2.2 says
// it is cheap enough to run every second).
func BenchmarkDigestGeneration(b *testing.B) {
	db := benchDB(b)
	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tx := db.Begin("bench")
		if err := tx.Insert(lt, fig8Row(int64(i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.GenerateDigest(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentationOverhead prices the observability layer on the
// hot commit path: the same single-row-insert commit loop with the
// default (enabled) registry, with per-transaction tracing switched off,
// and with metrics disabled entirely. The metrics deltas are the full
// cost of counters, stage timers, span hooks, the audit event log and a
// background runtime sampler; the trace=on/trace=off delta isolates the
// tracing layer (trace allocation from the pool, per-stage span records,
// the tail-sampling decision) and is gated ≤3% by
// TestTracingOverheadGate. The budget is <2% for metrics on durable
// (SyncFull) commits, the configuration the paper's commit experiments
// use. The buffered mode exposes the absolute per-commit cost, since
// there is no fsync to hide behind.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	modes := []struct {
		name string
		obs  func() *sqlledger.MetricsRegistry
	}{
		{"metrics=on/trace=on", sqlledger.NewMetricsRegistry},
		{"metrics=on/trace=off", tracingOffRegistry},
		{"metrics=off", sqlledger.DisabledMetrics},
	}
	syncs := []struct {
		name string
		mode sqlledger.SyncMode
	}{
		{"sync=buffered", sqlledger.SyncBuffered},
		{"sync=full", sqlledger.SyncFull},
	}
	for _, sync := range syncs {
		for _, mode := range modes {
			b.Run(sync.name+"/"+mode.name, func(b *testing.B) {
				reg := mode.obs()
				db, err := sqlledger.Open(sqlledger.Options{
					Dir: b.TempDir(), Name: "bench",
					BlockSize:   sqlledger.DefaultBlockSize,
					Sync:        sync.mode,
					LockTimeout: 5 * time.Second,
					Obs:         reg,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				// Production deployments run the sampler alongside the
				// workload, so its cost belongs in the measured delta
				// (it is inert in the disabled configuration).
				stopSampler := sqlledger.StartRuntimeSampler(reg, time.Second)
				defer stopSampler()
				lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tx := db.Begin("bench")
					if err := tx.Insert(lt, fig8Row(int64(i))); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReceipt measures receipt generation and offline verification.
func BenchmarkReceipt(b *testing.B) {
	db := benchDB(b)
	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		b.Fatal(err)
	}
	var txIDs []uint64
	for i := 0; i < 500; i++ {
		tx := db.Begin("bench")
		if err := tx.Insert(lt, fig8Row(int64(i))); err != nil {
			b.Fatal(err)
		}
		txIDs = append(txIDs, tx.ID())
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.GenerateDigest(); err != nil {
		b.Fatal(err)
	}
	pub, priv := receiptKeys(b)
	b.Run("generate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.GenerateReceipt(txIDs[i%len(txIDs)], priv); err != nil {
				b.Fatal(err)
			}
		}
	})
	r, err := db.GenerateReceipt(txIDs[0], priv)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sqlledger.VerifyReceipt(r, pub); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func receiptKeys(b *testing.B) (ed25519.PublicKey, ed25519.PrivateKey) {
	b.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	return pub, priv
}
