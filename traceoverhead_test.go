package sqlledger_test

// The tracing-overhead gate backing BenchmarkInstrumentationOverhead's
// trace=on/trace=off split: per-transaction tracing may cost at most 3%
// on durable (SyncFull) commits, the configuration the paper's commit
// experiments use. Tracing runs with its production defaults (100ms
// slow threshold, 1% sampling), so the measured cost includes the
// tail-sampling decision and the occasional retained trace.

import (
	"os"
	"testing"
	"time"

	"sqlledger"
)

// tracingOffRegistry is a fully enabled registry with only the
// per-transaction trace layer switched off — the baseline that isolates
// tracing cost from the rest of the observability stack.
func tracingOffRegistry() *sqlledger.MetricsRegistry {
	reg := sqlledger.NewMetricsRegistry()
	reg.Traces().SetEnabled(false)
	return reg
}

// commitLoopNs times n single-row-insert durable commits and returns
// the per-commit cost in nanoseconds.
func commitLoopNs(t *testing.T, reg *sqlledger.MetricsRegistry, n int) float64 {
	t.Helper()
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: t.TempDir(), Name: "gate",
		BlockSize:   sqlledger.DefaultBlockSize,
		Sync:        sqlledger.SyncFull,
		LockTimeout: 5 * time.Second,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	commit := func(i int64) {
		tx := db.Begin("gate")
		if err := tx.Insert(lt, fig8Row(i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	const warmup = 200
	for i := int64(0); i < warmup; i++ {
		commit(i)
	}
	start := time.Now()
	for i := int64(0); i < int64(n); i++ {
		commit(warmup + i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// TestTracingOverheadGate measures trace=on against trace=off and fails
// if tracing costs more than 3%. Both configurations are measured
// several times interleaved and compared at their global minima, which
// filters scheduler and fsync noise. Durable-commit A/B timing is only
// trustworthy on a quiet machine, so the strict 3% bound applies when
// SQLLEDGER_TRACE_GATE is set (the dedicated `make trace-gate` CI step,
// which runs alone); inside a parallel `go test ./...` sweep the test
// still runs but with a loose bound that catches only catastrophic
// regressions (an allocation storm, a lock on the trace hot path).
func TestTracingOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	const (
		commits = 1500
		rounds  = 3
		tries   = 3
	)
	maxRatio, mode := 1.5, "loose (concurrent-suite sanity bound)"
	if os.Getenv("SQLLEDGER_TRACE_GATE") != "" {
		maxRatio, mode = 1.03, "strict (3% budget)"
	}
	var on, off float64
	for try := 1; try <= tries; try++ {
		for r := 0; r < rounds; r++ {
			if v := commitLoopNs(t, sqlledger.NewMetricsRegistry(), commits); on == 0 || v < on {
				on = v
			}
			if v := commitLoopNs(t, tracingOffRegistry(), commits); off == 0 || v < off {
				off = v
			}
		}
		ratio := on / off
		t.Logf("try %d (%s): trace=on %.0f ns/commit, trace=off %.0f ns/commit, ratio %.4f",
			try, mode, on, off, ratio)
		if ratio <= maxRatio {
			return
		}
	}
	t.Fatalf("tracing overhead %.2f%% exceeds the %s gate (on=%.0f off=%.0f ns/commit)",
		100*(on/off-1), mode, on, off)
}
