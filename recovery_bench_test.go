// Recovery-scaling benchmark and gate for the fast-restart path:
// pipelined WAL read/decode plus a key-hash-partitioned redo pool replay
// the log on all cores while preserving per-key commit order, so restart
// time scales with hardware instead of log length (see DESIGN.md
// decision 15). Parallel replay must land on exactly the serial replay's
// state: digests are compared on every run and the full verification
// pass must stay green.
package sqlledger_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger"
)

// buildRecoveryImage loads rows into a fresh database in 1000-row
// transactions on a logical clock and closes it WITHOUT a checkpoint, so
// every subsequent Open replays the full WAL. It returns the digest the
// build observed; recovery at any worker count must reproduce it.
func buildRecoveryImage(tb testing.TB, dir string, rows int) sqlledger.Digest {
	tb.Helper()
	db := openIngestDB(tb, dir)
	lt, err := db.CreateLedgerTable("t", ingestSchema(), sqlledger.Updateable)
	if err != nil {
		tb.Fatal(err)
	}
	batch := make([]sqlledger.Row, 0, ingestBatchRows)
	for lo := 0; lo < rows; lo += ingestBatchRows {
		batch = batch[:0]
		for j := 0; j < ingestBatchRows && lo+j < rows; j++ {
			batch = append(batch, ingestRow(int64(lo+j)))
		}
		tx := db.Begin("load")
		if err := tx.InsertBatch(lt, batch); err != nil {
			tb.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			tb.Fatal(err)
		}
	}
	// Close all ledger blocks now so recovery-time digest generation is a
	// pure read and repeated recoveries of the same image are identical.
	d, err := db.GenerateDigest()
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.Close(); err != nil {
		tb.Fatal(err)
	}
	return d
}

// recoverImage reopens the image with the given replay worker count and
// returns the Open wall time and the post-recovery digest hash.
func recoverImage(tb testing.TB, dir string, workers int) (time.Duration, string) {
	tb.Helper()
	var tick atomic.Int64
	tick.Store(1_800_000_000_000_000_000)
	start := time.Now()
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: dir, Name: "ingest",
		BlockSize:       sqlledger.DefaultBlockSize,
		LockTimeout:     5 * time.Second,
		RecoveryWorkers: workers,
		Clock:           func() int64 { return tick.Add(1) },
	})
	if err != nil {
		tb.Fatalf("recover with %d workers: %v", workers, err)
	}
	elapsed := time.Since(start)
	d, err := db.GenerateDigest()
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.Close(); err != nil {
		tb.Fatal(err)
	}
	return elapsed, d.Hash
}

// BenchmarkRecovery measures full-WAL restart at 1/2/4/8 replay workers
// over one prebuilt crash image. One op is one complete Open; the custom
// metric reports replayed rows per second.
func BenchmarkRecovery(b *testing.B) {
	const rows = 50_000
	dir := b.TempDir()
	buildRecoveryImage(b, dir, rows)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dw", workers), func(b *testing.B) {
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, _ := recoverImage(b, dir, workers)
				total += d
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*rows/total.Seconds(), "rows/s")
		})
	}
}

// TestRecoveryScaling gates the parallel replay path. The digest half
// runs everywhere: recovery at 4 workers must land on the byte-identical
// digest as the fully serial replay of the same crash image. The
// wall-clock half — parallel recovery at least 2x faster than serial —
// needs real hardware parallelism, so it is skipped below 4 CPUs and
// under the race detector.
func TestRecoveryScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	const rows = 30_000
	dir := t.TempDir()
	built := buildRecoveryImage(t, dir, rows)
	serialDur, serialHash := recoverImage(t, dir, 1)
	parDur, parHash := recoverImage(t, dir, 4)
	if serialHash != built.Hash || parHash != built.Hash {
		t.Fatalf("digest mismatch: built %s, serial replay %s, parallel replay %s",
			built.Hash, serialHash, parHash)
	}
	if raceEnabled {
		t.Skip("wall-clock gate skipped under -race")
	}
	if ncpu := runtime.GOMAXPROCS(0); ncpu < 4 {
		t.Skipf("wall-clock gate needs >=4 CPUs, have %d", ncpu)
	}
	// Best of three trials per side to damp scheduler and page-cache noise.
	for trial := 0; trial < 2; trial++ {
		if d, _ := recoverImage(t, dir, 1); d < serialDur {
			serialDur = d
		}
		if d, _ := recoverImage(t, dir, 4); d < parDur {
			parDur = d
		}
	}
	speedup := float64(serialDur) / float64(parDur)
	t.Logf("serial replay %v, parallel(4 workers) %v, speedup %.2fx", serialDur, parDur, speedup)
	if speedup < 2.0 {
		t.Fatalf("recovery speedup %.2fx at 4 workers, want >= 2x (serial %v, parallel %v)",
			speedup, serialDur, parDur)
	}
}

// TestRecoverySerialParallelEquivalence replays one crash image — with a
// torn record tail, as a real crash leaves — serially and in parallel,
// and requires the byte-identical digest plus a green full verification
// from both.
func TestRecoverySerialParallelEquivalence(t *testing.T) {
	const rows = 10_000
	dir := t.TempDir()
	built := buildRecoveryImage(t, dir, rows)
	// Simulate a crash mid-append: a partial record header at the tail.
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, workers := range []int{1, 4} {
		var tick atomic.Int64
		tick.Store(1_800_000_000_000_000_000)
		db, err := sqlledger.Open(sqlledger.Options{
			Dir: dir, Name: "ingest",
			BlockSize:       sqlledger.DefaultBlockSize,
			LockTimeout:     5 * time.Second,
			RecoveryWorkers: workers,
			Clock:           func() int64 { return tick.Add(1) },
		})
		if err != nil {
			t.Fatalf("recover with %d workers: %v", workers, err)
		}
		d, err := db.GenerateDigest()
		if err != nil {
			t.Fatal(err)
		}
		if d.Hash != built.Hash {
			t.Fatalf("workers=%d digest %s, want %s", workers, d.Hash, built.Hash)
		}
		rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("workers=%d verification failed: %+v", workers, rep)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
