//go:build !race

package sqlledger_test

// raceEnabled reports whether the race detector is active; wall-clock
// and allocation gates are skipped under -race.
const raceEnabled = false
