// Command ledgerbench regenerates the paper's evaluation (§4): it runs the
// workloads and measurements behind every figure and prints tables shaped
// like the ones in the paper.
//
//	ledgerbench -exp fig7        Figure 7: TPC-C/TPC-E throughput delta
//	ledgerbench -exp fig8        Figure 8: DML latency vs. index count
//	ledgerbench -exp fig9        Figure 9: verification time vs. #txs
//	ledgerbench -exp blockchain  §4.1.1: vs. a simulated decentralized ledger
//	ledgerbench -exp naive       §2.2: incremental vs. naive digests
//	ledgerbench -exp commit      commit scaling: group vs. serialized commit
//	ledgerbench -exp ingest      ingest scaling: serial vs. batched parallel hashing
//	ledgerbench -exp read        read scaling: MVCC snapshot reads vs. reader count
//	ledgerbench -exp shard       shard scaling: multi-core ingest under one super-root
//	ledgerbench -exp audit       always-on audit: full rescan vs incremental vs sampled
//	ledgerbench -exp recover     recovery scaling: restart time vs. replay worker count
//	ledgerbench -exp all         everything
//
// Absolute numbers depend on the machine; the paper's claims are about
// relative shape (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlledger"
	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
	"sqlledger/internal/simchain"
	"sqlledger/internal/workload"
)

var (
	expFlag     = flag.String("exp", "all", "experiment: fig7|fig8|fig9|blockchain|naive|commit|ingest|read|shard|audit|recover|all")
	durFlag     = flag.Duration("duration", 5*time.Second, "measurement duration per configuration")
	clientsFlag = flag.Int("clients", runtime.GOMAXPROCS(0), "concurrent workload clients")
	warehouses  = flag.Int("warehouses", 2, "TPC-C warehouses")
	fig9Sizes   = flag.String("fig9", "1000,5000,20000,50000", "comma-separated transaction counts for Figure 9")
	dirFlag     = flag.String("dir", "", "working directory (default: a temp dir)")
	// baseCost models the per-transaction overhead of a client-server
	// RDBMS (network round trips, protocol parsing, session management)
	// that this embedded engine does not pay. The paper's relative
	// overheads sit on top of SQL Server's substantial per-transaction
	// base cost; see EXPERIMENTS.md.
	baseCost = flag.Duration("basecost", 0, "modeled per-transaction base cost added to every transaction (fig7)")
	// metricsAddr serves the shared registry live while experiments run:
	// /metrics (Prometheus text) and /debug/spans (JSON). "127.0.0.1:0"
	// picks a free port (printed at startup).
	metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/spans on this address (empty: off)")
	statsEvery  = flag.Duration("stats-every", 0, "print a periodic stats line from the metrics registry (0: off)")
	slowMS      = flag.Int("slow-ms", 100, "slow-query threshold in milliseconds: transactions at or above it are always trace-retained and logged to /debug/slow (0: retain every trace)")
	traceSample = flag.Float64("trace-sample", 0.01, "fraction of fast, error-free traces retained, 0..1")
)

// reg is shared by every database the benchmark opens, so the stats
// printer and /metrics endpoint see the whole run.
var reg = sqlledger.NewMetricsRegistry()

func init() { workload.Instrument(reg) }

// burn spins for roughly d (sleeping is too coarse below ~1ms).
func burn(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func main() {
	flag.Parse()
	reg.Traces().SetSlowThreshold(time.Duration(*slowMS) * time.Millisecond)
	reg.Traces().SetSampleRate(*traceSample)
	base := *dirFlag
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "ledgerbench")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(base)
	}
	var srv *sqlledger.MetricsServer
	if *metricsAddr != "" {
		var err error
		srv, err = sqlledger.StartMetricsServer(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: http://%s/metrics  spans: http://%s/debug/spans  events: http://%s/debug/events\n",
			srv.Addr(), srv.Addr(), srv.Addr())
		stopSampler := sqlledger.StartRuntimeSampler(reg, time.Second)
		defer stopSampler()
	}
	stopStats := func() {}
	if *statsEvery > 0 {
		stopStats = startStatsPrinter(*statsEvery)
	}
	switch *expFlag {
	case "fig7":
		fig7(base)
	case "fig8":
		fig8(base)
	case "fig9":
		fig9(base)
	case "blockchain":
		blockchain(base)
	case "naive":
		naive(base)
	case "commit":
		commitScaling(base)
	case "ingest":
		ingest(base)
	case "read":
		readScaling(base)
	case "shard":
		shardScaling(base)
	case "audit":
		auditBench(base)
	case "recover":
		recoverScaling(base)
	case "all":
		fig7(base)
		fig8(base)
		fig9(base)
		blockchain(base)
		naive(base)
		commitScaling(base)
		ingest(base)
		readScaling(base)
		shardScaling(base)
		auditBench(base)
		recoverScaling(base)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *expFlag))
	}
	// Stop (and final-flush) the stats printer before the self-check so
	// the last partial interval is printed, not dropped, and no printer
	// goroutine races the endpoint read.
	stopStats()
	if srv != nil {
		selfCheckMetrics(srv.Addr())
		srv.Close()
	}
}

// selfCheckMetrics fetches the live /metrics endpoint at the end of the
// run and fails loudly if it is unreachable, malformed, or missing the
// headline series — so CI catches endpoint regressions without an
// external curl.
func selfCheckMetrics(addr string) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		fatal(fmt.Errorf("metrics self-check: %w", err))
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fatal(fmt.Errorf("metrics self-check: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("metrics self-check: status %d", resp.StatusCode))
	}
	for _, want := range []string{obs.WALFsyncTotal, obs.CommitStageSeconds, obs.VerifyPhaseSeconds} {
		if !strings.Contains(string(body), want) {
			fatal(fmt.Errorf("metrics self-check: /metrics is missing %s", want))
		}
	}
	fmt.Printf("metrics self-check ok (%d bytes from /metrics)\n", len(body))
}

// startStatsPrinter prints one line per interval from the shared
// registry — commit and fsync rates plus commit-stage p95s — replacing
// the bespoke per-experiment counters for live monitoring.
func startStatsPrinter(every time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		var lastCommits, lastFsyncs, lastRows, lastReads int64
		last := time.Now()
		printLine := func(tag string) {
			snap := reg.Snapshot()
			now := time.Now()
			dt := now.Sub(last).Seconds()
			if dt <= 0 {
				return
			}
			commits := snap.CounterValue(obs.EngineCommitTotal)
			fsyncs := snap.CounterValue(obs.WALFsyncTotal)
			rows := snap.CounterValue(obs.RowsHashedTotal)
			reads := snap.CounterValue(obs.SnapshotReadsTotal)
			queue, _ := snap.GaugeValue(obs.LedgerQueueLength)
			line := fmt.Sprintf("[stats%s] commits/s=%.0f rows/s=%.0f reads/s=%.0f fsyncs/s=%.0f queue=%.0f",
				tag, float64(commits-lastCommits)/dt, float64(rows-lastRows)/dt, float64(reads-lastReads)/dt, float64(fsyncs-lastFsyncs)/dt, queue)
			if h, ok := snap.Histogram(obs.CommitStageSeconds, sqlledger.MetricLabel{Key: "stage", Value: "wait"}); ok && h.Count > 0 {
				line += fmt.Sprintf(" wait_p95=%s", time.Duration(h.P95*float64(time.Second)).Round(time.Microsecond))
			}
			if h, ok := snap.Histogram(obs.WALFsyncSeconds); ok && h.Count > 0 {
				line += fmt.Sprintf(" fsync_p95=%s", time.Duration(h.P95*float64(time.Second)).Round(time.Microsecond))
			}
			fmt.Println(line)
			lastCommits, lastFsyncs, lastRows, lastReads, last = commits, fsyncs, rows, reads, now
		}
		for {
			select {
			case <-stopCh:
				// Flush the final partial interval instead of dropping it.
				printLine(" final")
				return
			case <-ticker.C:
				printLine("")
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ledgerbench:", err)
	os.Exit(1)
}

// progressLine returns a VerifyOptions.Progress callback rendering a
// live, self-erasing progress line on w. Updates are throttled to
// whole-percent changes so the callback stays cheap.
func progressLine(w io.Writer) func(sqlledger.VerifyProgress) {
	lastPct := -1
	return func(p sqlledger.VerifyProgress) {
		pct := int(p.Ratio * 100)
		if pct == lastPct && p.Ratio < 1 {
			return
		}
		lastPct = pct
		label := p.Phase
		if p.Table != "" {
			label += " " + p.Table
		}
		fmt.Fprintf(w, "\r  verify %3d%% %-40s", pct, label)
		if p.Ratio >= 1 {
			fmt.Fprintf(w, "\r%*s\r", 56, "")
		}
	}
}

func openDB(base, name string) *sqlledger.DB {
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: filepath.Join(base, name), Name: name,
		BlockSize:   sqlledger.DefaultBlockSize,
		LockTimeout: 5 * time.Second,
		Obs:         reg,
	})
	if err != nil {
		fatal(err)
	}
	return db
}

// runClients drives fn from N goroutines for the configured duration and
// returns committed transactions per second.
func runClients(run func(seed int64, stop *atomic.Bool) int64) float64 {
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < *clientsFlag; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			total.Add(run(int64(g+1), &stop))
		}(g)
	}
	time.Sleep(*durFlag)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

// --- Figure 7 ---------------------------------------------------------------

func fig7(base string) {
	fmt.Println("== Figure 7: throughput of SQL Ledger compared to traditional tables ==")
	type result struct{ regular, ledger float64 }
	results := map[string]result{}

	for _, wl := range []string{"TPC-C", "TPC-E"} {
		var r result
		for _, ledger := range []bool{false, true} {
			mode := "regular"
			if ledger {
				mode = "ledger"
			}
			db := openDB(base, fmt.Sprintf("fig7-%s-%s", wl, mode))
			var tps float64
			if wl == "TPC-C" {
				w, err := workload.NewTPCC(db, ledger, *warehouses)
				if err != nil {
					fatal(err)
				}
				tps = runClients(func(seed int64, stop *atomic.Bool) int64 {
					c := w.NewClient(seed)
					for !stop.Load() {
						burn(*baseCost)
						_ = c.RunOne()
					}
					return int64(c.Commits)
				})
			} else {
				w, err := workload.NewTPCE(db, ledger, 200, 100)
				if err != nil {
					fatal(err)
				}
				tps = runClients(func(seed int64, stop *atomic.Bool) int64 {
					c := w.NewClient(seed)
					for !stop.Load() {
						burn(*baseCost)
						_ = c.RunOne()
					}
					return int64(c.Commits)
				})
			}
			db.Close()
			if ledger {
				r.ledger = tps
			} else {
				r.regular = tps
			}
			fmt.Printf("  %-6s %-8s %10.0f tx/s\n", wl, mode, tps)
		}
		results[wl] = r
	}
	fmt.Println("\n  Workload | Performance difference   (paper: TPC-C -30.6%, TPC-E -6.9%)")
	for _, wl := range []string{"TPC-C", "TPC-E"} {
		r := results[wl]
		fmt.Printf("  %-8s | %+.1f%%\n", wl, 100*(r.ledger-r.regular)/r.regular)
	}
	fmt.Println()
}

// --- Figure 8 ---------------------------------------------------------------

func fig8Schema() *sqlledger.Schema {
	return sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("a", sqlledger.TypeBigInt),
		sqlledger.Col("b", sqlledger.TypeBigInt),
		sqlledger.Col("c", sqlledger.TypeBigInt),
		sqlledger.Col("filler", sqlledger.TypeVarChar),
	}, "id")
}

func fig8Row(id int64) sqlledger.Row {
	filler := make([]byte, 210)
	for i := range filler {
		filler[i] = byte('a' + (id+int64(i))%26)
	}
	return sqlledger.Row{
		sqlledger.BigInt(id), sqlledger.BigInt(id * 3), sqlledger.BigInt(id * 7),
		sqlledger.BigInt(id * 11), sqlledger.VarChar(string(filler)),
	}
}

func fig8(base string) {
	fmt.Println("== Figure 8: single-row DML latency, 260-byte rows (µs/op) ==")
	const rows = 5000
	fmt.Printf("  %-8s %-8s %8s %8s %8s %8s\n", "op", "mode", "idx=0", "idx=1", "idx=2", "idx=3")
	for _, op := range []string{"insert", "update", "delete"} {
		for _, mode := range []string{"regular", "ledger"} {
			fmt.Printf("  %-8s %-8s", op, mode)
			for nIdx := 0; nIdx <= 3; nIdx++ {
				db := openDB(base, fmt.Sprintf("fig8-%s-%s-%d", op, mode, nIdx))
				var lt *sqlledger.LedgerTable
				var err error
				if mode == "ledger" {
					lt, err = db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
				} else {
					_, err = db.Engine().CreateTable(regularSpec())
				}
				if err != nil {
					fatal(err)
				}
				for i, col := range []string{"a", "b", "c"}[:nIdx] {
					if _, err := db.Engine().CreateIndex("t", fmt.Sprintf("ix%d", i), col); err != nil {
						fatal(err)
					}
				}
				// Preload for update/delete, plus a warmup region so the
				// measured ops run against warmed structures.
				loadRows(db, lt, rows)
				const warm = 500
				for i := 0; i < warm; i++ {
					doOp(db, lt, "update", int64(i))
				}
				n := rows - warm
				start := time.Now()
				switch op {
				case "insert":
					for i := 0; i < n; i++ {
						doOp(db, lt, op, int64(rows+i))
					}
				default:
					for i := 0; i < n; i++ {
						doOp(db, lt, op, int64(warm+i))
					}
				}
				us := float64(time.Since(start).Microseconds()) / float64(n)
				fmt.Printf(" %8.1f", us)
				db.Close()
			}
			fmt.Println()
		}
	}
	fmt.Println("  (paper deltas on their hardware: insert +~12, delete +~30, update +~40 µs/row)")
	fmt.Println()
}

func loadRows(db *sqlledger.DB, lt *sqlledger.LedgerTable, n int) {
	for i := 0; i < n; i += 100 {
		tx := db.Begin("load")
		for j := 0; j < 100 && i+j < n; j++ {
			id := int64(i + j)
			var err error
			if lt != nil {
				err = tx.Insert(lt, fig8Row(id))
			} else {
				et, terr := db.Engine().Table("t")
				if terr != nil {
					fatal(terr)
				}
				_, err = tx.Raw().Insert(et, fig8Row(id))
			}
			if err != nil {
				fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
	}
}

func doOp(db *sqlledger.DB, lt *sqlledger.LedgerTable, op string, id int64) {
	tx := db.Begin("bench")
	var err error
	switch {
	case lt != nil && op == "insert":
		err = tx.Insert(lt, fig8Row(id))
	case lt != nil && op == "update":
		r := fig8Row(id)
		r[1] = sqlledger.BigInt(id * 13)
		err = tx.Update(lt, r)
	case lt != nil && op == "delete":
		err = tx.Delete(lt, sqlledger.BigInt(id))
	default:
		et, terr := db.Engine().Table("t")
		if terr != nil {
			fatal(terr)
		}
		switch op {
		case "insert":
			_, err = tx.Raw().Insert(et, fig8Row(id))
		case "update":
			r := fig8Row(id)
			r[1] = sqlledger.BigInt(id * 13)
			_, err = tx.Raw().Update(et, r)
		case "delete":
			_, err = tx.Raw().Delete(et, sqlledger.BigInt(id))
		}
	}
	if err != nil {
		fatal(err)
	}
	if err := tx.Commit(); err != nil {
		fatal(err)
	}
}

// regularSpec is the engine-level spec for the Figure 8 table.
func regularSpec() engine.CreateTableSpec {
	return engine.CreateTableSpec{Name: "t", Schema: fig8Schema()}
}

// --- Figure 9 ---------------------------------------------------------------

func fig9(base string) {
	fmt.Println("== Figure 9: ledger verification time vs. number of transactions ==")
	var sizes []int
	for _, s := range splitComma(*fig9Sizes) {
		var n int
		fmt.Sscanf(s, "%d", &n)
		if n > 0 {
			sizes = append(sizes, n)
		}
	}
	fmt.Printf("  %12s %12s %14s\n", "transactions", "rows", "verify time")
	for _, n := range sizes {
		db := openDB(base, fmt.Sprintf("fig9-%d", n))
		lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
		if err != nil {
			fatal(err)
		}
		id := int64(0)
		for i := 0; i < n; i++ {
			tx := db.Begin("bench")
			for j := 0; j < 5; j++ {
				id++
				if err := tx.Insert(lt, fig8Row(id)); err != nil {
					fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				fatal(err)
			}
		}
		d, err := db.GenerateDigest()
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{
			Progress: progressLine(os.Stderr),
		})
		if err != nil {
			fatal(err)
		}
		if !rep.Ok() {
			fatal(fmt.Errorf("verification failed:\n%s", rep))
		}
		fmt.Printf("  %12d %12d %14s\n", n, n*5, time.Since(start).Round(time.Millisecond))
		db.Close()
	}
	fmt.Println("  (paper: time grows linearly with the number of transactions)")
	fmt.Println()
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// --- Blockchain comparison ----------------------------------------------------

func blockchain(base string) {
	fmt.Println("== §4.1.1: SQL Ledger vs. a simulated decentralized ledger ==")
	// SQL Ledger side: TPC-C-like new orders through the ledger.
	db := openDB(base, "bc-sqlledger")
	w, err := workload.NewTPCC(db, true, *warehouses)
	if err != nil {
		fatal(err)
	}
	sqlTPS := runClients(func(seed int64, stop *atomic.Bool) int64 {
		c := w.NewClient(seed)
		for !stop.Load() {
			_ = c.RunOne()
		}
		return int64(c.Commits)
	})
	db.Close()

	// Decentralized side: same 260-byte payloads through consensus. Such
	// systems need massive client concurrency to fill blocks, so the
	// submitter pool is much larger than the SQL Ledger client count.
	chain := simchain.New(simchain.DefaultConfig())
	payload := make([]byte, 260)
	var latSum, latN, chainTotal atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	submitters := *clientsFlag * 64
	start := time.Now()
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				if chain.Submit(payload) == nil {
					latSum.Add(int64(time.Since(t0)))
					latN.Add(1)
					chainTotal.Add(1)
				}
			}
		}()
	}
	time.Sleep(*durFlag)
	stop.Store(true)
	wg.Wait()
	chainTPS := float64(chainTotal.Load()) / time.Since(start).Seconds()
	chain.Stop()
	avgLat := time.Duration(0)
	if latN.Load() > 0 {
		avgLat = time.Duration(latSum.Load() / latN.Load())
	}
	fmt.Printf("  SQL Ledger (TPC-C-like):      %10.0f tx/s\n", sqlTPS)
	fmt.Printf("  Simulated consensus ledger:   %10.0f tx/s, avg end-to-end latency %v\n", chainTPS, avgLat.Round(time.Millisecond))
	if chainTPS > 0 {
		fmt.Printf("  Throughput ratio: %.1fx (paper claims >20x vs. Hyperledger Fabric)\n", sqlTPS/chainTPS)
	}
	fmt.Println()
}

// --- Commit scaling -------------------------------------------------------------

// commitScaling measures the staged group-commit pipeline against the
// serialized commit path under SyncFull, where every write group costs one
// fsync. Each client runs single-row ledger inserts; the interesting
// columns are commits/s (should scale with clients under group commit) and
// fsync/commit (should drop well below 1 as groups form).
func commitScaling(base string) {
	fmt.Println("== Commit scaling: group vs. serialized commit pipeline (SyncFull) ==")
	fmt.Printf("  %-10s %7s %12s %14s %11s\n", "pipeline", "clients", "commits/s", "fsync/commit", "avg group")
	for _, pipeline := range []string{"serialized", "group"} {
		for _, clients := range []int{1, 2, 4, 8} {
			// MaxBatch = clients lets one write group absorb every
			// in-flight commit; the small MaxDelay only pays off when a
			// straggler is about to join.
			cfg := sqlledger.GroupCommitOptions{Disabled: pipeline == "serialized"}
			if !cfg.Disabled {
				cfg.MaxBatch = clients
				cfg.MaxDelay = 500 * time.Microsecond
			}
			db, err := sqlledger.Open(sqlledger.Options{
				Dir:  filepath.Join(base, fmt.Sprintf("commit-%s-%d", pipeline, clients)),
				Name: "commit", BlockSize: sqlledger.DefaultBlockSize,
				Sync:        sqlledger.SyncFull,
				LockTimeout: 5 * time.Second,
				GroupCommit: cfg,
				Obs:         reg,
			})
			if err != nil {
				fatal(err)
			}
			lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
			if err != nil {
				fatal(err)
			}
			before := db.CommitStats()
			res := workload.Drive(clients, *durFlag, func(id int) func() error {
				seq := int64(0)
				return func() error {
					seq++
					tx := db.Begin("bench")
					if err := tx.Insert(lt, fig8Row(int64(id+1)*1_000_000_000+seq)); err != nil {
						tx.Rollback()
						return err
					}
					return tx.Commit()
				}
			})
			after := db.CommitStats()
			if res.Errors > 0 {
				fatal(fmt.Errorf("commit scaling: %d errors at %s/%d: %w", res.Errors, pipeline, clients, res.Err))
			}
			fsyncPerCommit := float64(after.Fsyncs-before.Fsyncs) / float64(res.Commits)
			avgGroup := "-"
			if g := after.Groups - before.Groups; g > 0 {
				avgGroup = fmt.Sprintf("%.2f", float64(after.Commits-before.Commits)/float64(g))
			}
			fmt.Printf("  %-10s %7d %12.0f %14.3f %11s\n", pipeline, clients, res.TPS(), fsyncPerCommit, avgGroup)
			db.Close()
		}
	}
	fmt.Println("  (group commit amortizes one fsync across a write group; §3.3.2's")
	fmt.Println("   ordinal order is preserved because batches enqueue in sequence order)")
	fmt.Println()
}

// --- Ingest scaling -------------------------------------------------------------

// ingest measures the bulk-DML fast path: the same fixed row set is
// loaded one row at a time and through InsertBatch at several worker
// counts. Every database runs on a logical clock, so each configuration
// must land on the byte-identical final digest — the speedup comes from
// parallel row hashing alone, never from reordering ledger artifacts.
func ingest(base string) {
	fmt.Println("== Ingest scaling: serial inserts vs. batched parallel hashing ==")
	const rows = 30_000
	const perTx = 1_000
	batches := make([][]sqlledger.Row, 0, rows/perTx)
	for lo := 0; lo < rows; lo += perTx {
		b := make([]sqlledger.Row, perTx)
		for j := range b {
			b[j] = fig8Row(int64(lo + j))
		}
		batches = append(batches, b)
	}
	run := func(name string, workers int) (float64, string) {
		var tick atomic.Int64
		tick.Store(1_700_000_000_000_000_000)
		db, err := sqlledger.Open(sqlledger.Options{
			Dir: filepath.Join(base, "ingest-"+name), Name: "ingest",
			BlockSize:   sqlledger.DefaultBlockSize,
			LockTimeout: 5 * time.Second,
			Obs:         reg,
			Clock:       func() int64 { return tick.Add(1) },
		})
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for _, b := range batches {
			tx := db.Begin("load")
			if workers == 0 {
				for _, r := range b {
					if err := tx.Insert(lt, r); err != nil {
						fatal(err)
					}
				}
			} else if err := tx.InsertBatchParallel(lt, b, workers); err != nil {
				fatal(err)
			}
			if err := tx.Commit(); err != nil {
				fatal(err)
			}
		}
		elapsed := time.Since(start)
		d, err := db.GenerateDigest()
		if err != nil {
			fatal(err)
		}
		return float64(rows) / elapsed.Seconds(), d.Hash
	}
	serialTPS, serialHash := run("serial", 0)
	fmt.Printf("  %-16s %12.0f rows/s\n", "serial", serialTPS)
	for _, w := range []int{1, 2, 4, 8} {
		tps, hash := run(fmt.Sprintf("batch-%dw", w), w)
		if hash != serialHash {
			fatal(fmt.Errorf("ingest: digest mismatch at %d workers: %s != %s", w, hash, serialHash))
		}
		fmt.Printf("  %-16s %12.0f rows/s  (%.2fx, digest identical)\n",
			fmt.Sprintf("batch workers=%d", w), tps, tps/serialTPS)
	}
	fmt.Println("  (rows hash on the worker pool; Merkle appends stay in row order,")
	fmt.Println("   so every configuration produces the same ledger bytes)")
	fmt.Println()
}

// --- Recovery scaling ---------------------------------------------------------

// recoverScaling builds one crash image — a full WAL with no checkpoint,
// closed mid-flight like a killed process — and measures complete restart
// (snapshot load + pipelined replay + install) at 1, 2, 4 and 8 replay
// workers. Every configuration must land on the byte-identical digest:
// parallel redo partitions committed write-sets by key hash, which
// preserves per-key commit-timestamp order, so the recovered state is
// provably the serial replay's state.
func recoverScaling(base string) {
	fmt.Println("== Recovery scaling: pipelined parallel WAL replay ==")
	const rows = 50_000
	const perTx = 1_000
	dir := filepath.Join(base, "recover")
	var tick atomic.Int64
	tick.Store(1_700_000_000_000_000_000)
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: dir, Name: "recover",
		BlockSize:   sqlledger.DefaultBlockSize,
		LockTimeout: 5 * time.Second,
		Obs:         reg,
		Clock:       func() int64 { return tick.Add(1) },
	})
	if err != nil {
		fatal(err)
	}
	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		fatal(err)
	}
	batch := make([]sqlledger.Row, perTx)
	for lo := 0; lo < rows; lo += perTx {
		for j := range batch {
			batch[j] = fig8Row(int64(lo + j))
		}
		tx := db.Begin("load")
		if err := tx.InsertBatch(lt, batch); err != nil {
			fatal(err)
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
	}
	built, err := db.GenerateDigest()
	if err != nil {
		fatal(err)
	}
	if err := db.Close(); err != nil {
		fatal(err)
	}

	run := func(workers int) (time.Duration, string) {
		var rtick atomic.Int64
		rtick.Store(1_800_000_000_000_000_000)
		start := time.Now()
		rdb, err := sqlledger.Open(sqlledger.Options{
			Dir: dir, Name: "recover",
			BlockSize:       sqlledger.DefaultBlockSize,
			LockTimeout:     5 * time.Second,
			RecoveryWorkers: workers,
			Obs:             reg,
			Clock:           func() int64 { return rtick.Add(1) },
		})
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		d, err := rdb.GenerateDigest()
		if err != nil {
			fatal(err)
		}
		if err := rdb.Close(); err != nil {
			fatal(err)
		}
		return elapsed, d.Hash
	}
	var serial time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		dur, hash := run(w)
		if hash != built.Hash {
			fatal(fmt.Errorf("recover: digest mismatch at %d workers: %s != %s", w, hash, built.Hash))
		}
		if w == 1 {
			serial = dur
		}
		fmt.Printf("  workers=%d  %10v  %12.0f rows/s  (%.2fx, digest identical)\n",
			w, dur.Round(time.Millisecond), float64(rows)/dur.Seconds(), float64(serial)/float64(dur))
	}
	fmt.Println("  (read-ahead + parallel decode feed a key-hash-partitioned redo pool;")
	fmt.Println("   per-key commit order is preserved, so recovered state is byte-identical)")
	fmt.Println()
}

// --- Read scaling -------------------------------------------------------------

// readScaling measures the MVCC snapshot read path: reader clients run
// lock-free snapshot transactions over a preloaded ledger table while two
// writer clients keep the 2PL write path busy with single-row updates.
// Rows-read/s should scale near-linearly with reader count — the write
// path never blocks a reader, and readers never block each other.
func readScaling(base string) {
	fmt.Println("== Read scaling: MVCC snapshot reads with concurrent writers ==")
	const tableRows = 50_000
	const writers = 2
	db := openDB(base, "read")
	defer db.Close()
	w, err := workload.NewReadMostly(db, tableRows)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %7s %7s %14s %12s %10s\n", "readers", "writers", "rows-read/s", "writes/s", "speedup")
	var baseline float64
	for _, readers := range []int{1, 2, 4, 8} {
		var stop atomic.Bool
		var writes atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				op := w.Writer(int64(g + 1))
				for !stop.Load() {
					if op() == nil {
						writes.Add(1)
					}
				}
			}(g)
		}
		readsBefore := w.RowsRead.Load()
		res := workload.Drive(readers, *durFlag, func(id int) func() error {
			return w.Reader(int64(readers*100 + id))
		})
		stop.Store(true)
		wg.Wait()
		if res.Errors > 0 {
			fatal(fmt.Errorf("read scaling: %d errors at %d readers: %w", res.Errors, readers, res.Err))
		}
		rowsPerSec := float64(w.RowsRead.Load()-readsBefore) / res.Elapsed.Seconds()
		writesPerSec := float64(writes.Load()) / res.Elapsed.Seconds()
		if readers == 1 {
			baseline = rowsPerSec
		}
		fmt.Printf("  %7d %7d %14.0f %12.0f %9.2fx\n",
			readers, writers, rowsPerSec, writesPerSec, rowsPerSec/baseline)
	}
	fmt.Println("  (snapshot readers take no row locks; scaling is bounded only by cores)")
	fmt.Println()
}

// --- Shard scaling -------------------------------------------------------------

// shardScaling measures multi-core ingest across N engine instances under
// one signed super-root. The reproducibility half runs on a logical
// clock: a 1-shard database must land on the byte-identical digest as the
// plain single-instance stack, and two identical serial runs at 2 shards
// (every batch committing through 2PC) must land on the identical
// super-root. The throughput half drives a fixed 4-client pool of
// shard-pure 1000-row transactions at 1/2/4 shards; each configuration
// closes a super-block and verifies every shard against it.
func shardScaling(base string) {
	fmt.Println("== Shard scaling: multi-core ingest under one super-root ==")
	const rows = 20_000
	const perTx = 1_000
	const clients = 4
	open := func(name string, shards int) *sqlledger.ShardedDB {
		var tick atomic.Int64
		tick.Store(1_700_000_000_000_000_000)
		db, err := sqlledger.OpenSharded(sqlledger.Options{
			Dir: filepath.Join(base, "shard-"+name), Name: "ingest", Shards: shards,
			BlockSize:   sqlledger.DefaultBlockSize,
			LockTimeout: 5 * time.Second,
			Obs:         reg,
			Clock:       func() int64 { return tick.Add(1) },
		})
		if err != nil {
			fatal(err)
		}
		return db
	}

	// Plain single-instance baseline for the byte-compatibility check.
	var tick atomic.Int64
	tick.Store(1_700_000_000_000_000_000)
	plain, err := sqlledger.Open(sqlledger.Options{
		Dir: filepath.Join(base, "shard-plain"), Name: "ingest",
		BlockSize:   sqlledger.DefaultBlockSize,
		LockTimeout: 5 * time.Second,
		Obs:         reg,
		Clock:       func() int64 { return tick.Add(1) },
	})
	if err != nil {
		fatal(err)
	}
	plt, err := plain.CreateLedgerTable("t", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("a", sqlledger.TypeBigInt),
		sqlledger.Col("b", sqlledger.TypeBigInt),
		sqlledger.Col("payload", sqlledger.TypeVarChar),
	}, "id"), sqlledger.Updateable)
	if err != nil {
		fatal(err)
	}
	for lo := 0; lo < rows; lo += perTx {
		batch := make([]sqlledger.Row, perTx)
		for j := range batch {
			batch[j] = workload.ShardedRow(int64(lo + j))
		}
		tx := plain.Begin("load")
		if err := tx.InsertBatchParallel(plt, batch, 1); err != nil {
			fatal(err)
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
	}
	plainDigest, err := plain.GenerateDigest()
	if err != nil {
		fatal(err)
	}
	plain.Close()

	one := open("one", 1)
	oneLoader, err := workload.NewShardedLoader(one, "t")
	if err != nil {
		fatal(err)
	}
	if err := oneLoader.LoadSerial(rows, perTx); err != nil {
		fatal(err)
	}
	oneDigest, err := one.Shard(0).GenerateDigest()
	if err != nil {
		fatal(err)
	}
	one.Close()
	if oneDigest.Hash != plainDigest.Hash {
		fatal(fmt.Errorf("shard: 1-shard digest %s != single-instance digest %s", oneDigest.Hash, plainDigest.Hash))
	}
	fmt.Println("  1-shard digest == single-instance digest: ok")

	serialRoot := func(name string) string {
		db := open(name, 2)
		defer db.Close()
		loader, err := workload.NewShardedLoader(db, "t")
		if err != nil {
			fatal(err)
		}
		if err := loader.LoadSerial(rows, perTx); err != nil {
			fatal(err)
		}
		sb, err := db.CloseSuperBlock()
		if err != nil {
			fatal(err)
		}
		return sb.Root
	}
	rootA, rootB := serialRoot("two-a"), serialRoot("two-b")
	if rootA != rootB {
		fatal(fmt.Errorf("shard: identical 2-shard runs diverged: %s != %s", rootA, rootB))
	}
	fmt.Printf("  2-shard serial super-root reproducible across runs: ok (%s...)\n", rootA[:16])

	fmt.Printf("  %7s %7s %12s %9s %8s\n", "shards", "clients", "rows/s", "speedup", "verify")
	var baseline float64
	for _, shards := range []int{1, 2, 4} {
		db := open(fmt.Sprintf("perf-%d", shards), shards)
		loader, err := workload.NewShardedLoader(db, "t")
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := loader.LoadParallel(rows, perTx, clients); err != nil {
			fatal(err)
		}
		rps := float64(rows) / time.Since(start).Seconds()
		sb, err := db.CloseSuperBlock()
		if err != nil {
			fatal(err)
		}
		rep, err := sqlledger.VerifySuperBlock(db, sb, db.PublicKey(), sqlledger.VerifyOptions{})
		if err != nil {
			fatal(err)
		}
		if !rep.Ok() {
			fatal(fmt.Errorf("shard: verification failed at %d shards:\n%s", shards, rep.String()))
		}
		if shards == 1 {
			baseline = rps
		}
		fmt.Printf("  %7d %7d %12.0f %8.2fx %8s\n", shards, clients, rps, rps/baseline, "ok")
		db.Close()
	}
	fmt.Println("  (each shard is an independent engine+WAL+chain; the super-block signs")
	fmt.Println("   one Merkle root over every shard head, so trust stays a single digest)")
	fmt.Println()
}

// --- Naive digest ablation ------------------------------------------------------

func naive(base string) {
	fmt.Println("== §2.2 ablation: incremental digest vs. naive full rehash ==")
	db := openDB(base, "naive")
	lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		fatal(err)
	}
	const rows = 20000
	loadRows(db, lt, rows)
	// Incremental: commit one tx, produce a digest.
	start := time.Now()
	const trials = 50
	for i := 0; i < trials; i++ {
		tx := db.Begin("bench")
		if err := tx.Insert(lt, fig8Row(int64(rows+i))); err != nil {
			fatal(err)
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
		if _, err := db.GenerateDigest(); err != nil {
			fatal(err)
		}
	}
	incr := time.Since(start) / trials
	// Naive: rehash the whole table per digest.
	start = time.Now()
	rep, err := db.Verify(nil, sqlledger.VerifyOptions{Tables: []string{"t"}})
	if err != nil || !rep.Ok() {
		fatal(fmt.Errorf("naive rehash: %v", err))
	}
	full := time.Since(start)
	fmt.Printf("  incremental digest:      %v per digest\n", incr.Round(time.Microsecond))
	fmt.Printf("  naive full rehash (%d rows): %v per digest (%.0fx slower)\n",
		rows, full.Round(time.Microsecond), float64(full)/float64(incr))
	db.Close()
	fmt.Println()
}

// auditBench contrasts the three verification cost models on the same
// ledger: a full rescan (cost grows with total history), the auditor's
// incremental pass over K freshly closed blocks (cost stays flat as the
// ledger grows — the O(K) claim), and a 25% sampling sweep over cold
// history. The incremental column should be ~constant down the table
// while the full-verify column scales with the block count.
func auditBench(base string) {
	fmt.Println("== Always-on audit: full rescan vs incremental vs sampled ==")
	const txPerBlock = 16
	const rowsPerTx = 8
	const deltaBlocks = 8
	const sampleFraction = 0.25
	schema := sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("a", sqlledger.TypeBigInt),
		sqlledger.Col("b", sqlledger.TypeBigInt),
		sqlledger.Col("payload", sqlledger.TypeVarChar),
	}, "id")
	fmt.Printf("  %8s  %12s  %14s  %18s  %12s\n",
		"blocks", "full-verify", "audit-catchup", "incremental(K=8)", "sampled(25%)")
	for _, blocks := range []int{64, 256} {
		var tick atomic.Int64
		tick.Store(1_700_000_000_000_000_000)
		db, err := sqlledger.Open(sqlledger.Options{
			Dir: filepath.Join(base, fmt.Sprintf("audit-%d", blocks)), Name: "audit",
			BlockSize:   txPerBlock,
			LockTimeout: 5 * time.Second,
			Obs:         reg,
			Clock:       func() int64 { return tick.Add(1) },
		})
		if err != nil {
			fatal(err)
		}
		lt, err := db.CreateLedgerTable("t", schema, sqlledger.Updateable)
		if err != nil {
			fatal(err)
		}
		next := int64(0)
		load := func(txs int) {
			for i := 0; i < txs; i++ {
				tx := db.Begin("bench")
				for j := 0; j < rowsPerTx; j++ {
					if err := tx.Insert(lt, workload.ShardedRow(next)); err != nil {
						fatal(err)
					}
					next++
				}
				if err := tx.Commit(); err != nil {
					fatal(err)
				}
			}
		}
		load(blocks * txPerBlock)
		if _, err := db.GenerateDigest(); err != nil { // force-close the tail block
			fatal(err)
		}

		start := time.Now()
		rep, err := db.Verify(nil, sqlledger.VerifyOptions{})
		if err != nil || !rep.Ok() {
			fatal(fmt.Errorf("full verify: %v %v", err, rep))
		}
		fullDur := time.Since(start)

		// First cycle: the auditor catches the watermark up from scratch.
		aud, err := db.NewAuditor(sqlledger.AuditorOptions{})
		if err != nil {
			fatal(err)
		}
		start = time.Now()
		st := aud.RunCycle()
		catchup := time.Since(start)
		if !st.Ok {
			fatal(fmt.Errorf("audit catch-up: %v", st.LastReport))
		}

		// Steady state: K new blocks land, one cycle re-verifies only those.
		load(deltaBlocks * txPerBlock)
		if _, err := db.GenerateDigest(); err != nil {
			fatal(err)
		}
		before := st.BlocksCheckedInc
		start = time.Now()
		st = aud.RunCycle()
		incDur := time.Since(start)
		if !st.Ok {
			fatal(fmt.Errorf("audit incremental: %v", st.LastReport))
		}
		if got := st.BlocksCheckedInc - before; got > int64(deltaBlocks)+1 {
			fatal(fmt.Errorf("incremental pass checked %d blocks, want <= %d", got, deltaBlocks+1))
		}

		// A sampling auditor shares the watermark file, so its cycle is
		// almost pure cold-history sweep.
		samp, err := db.NewAuditor(sqlledger.AuditorOptions{SampleFraction: sampleFraction})
		if err != nil {
			fatal(err)
		}
		start = time.Now()
		if st := samp.RunCycle(); !st.Ok {
			fatal(fmt.Errorf("audit sampled: %v", st.LastReport))
		}
		sampDur := time.Since(start)

		fmt.Printf("  %8d  %12v  %14v  %18v  %12v\n",
			blocks, fullDur.Round(time.Microsecond), catchup.Round(time.Microsecond),
			incDur.Round(time.Microsecond), sampDur.Round(time.Microsecond))
		db.Close()
	}
	fmt.Println()
}
