// Command sqlledger is a small CLI for operating a SQL Ledger database:
// create ledger tables, run DML, inspect ledger views, extract digests,
// verify integrity — and simulate the storage-level tampering the system
// exists to detect.
//
//	sqlledger -db ./bank create accounts name:NVARCHAR:key balance:BIGINT
//	sqlledger -db ./bank insert accounts nick 100
//	sqlledger -db ./bank update accounts nick 50
//	sqlledger -db ./bank delete accounts nick
//	sqlledger -db ./bank select accounts
//	sqlledger -db ./bank view accounts
//	sqlledger -db ./bank digest > digest.json
//	sqlledger -db ./bank verify digest.json [digest2.json ...]
//	sqlledger -db ./bank tamper accounts nick 999999
//	sqlledger -db ./bank tables
//
// With -shards N (N > 1) the database is hash-partitioned across N
// engine instances under one signed super-root:
//
//	sqlledger -db ./bank -shards 4 create accounts name:NVARCHAR:key balance:BIGINT
//	sqlledger -db ./bank -shards 4 insert accounts nick 100
//	sqlledger -db ./bank -shards 4 superblock > super.json
//	sqlledger -db ./bank -shards 4 verify-super super.json
package main

import (
	"bufio"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sqlledger"
	"sqlledger/internal/sqltypes"
)

var dbDir = flag.String("db", "./ledgerdb", "database directory")
var user = flag.String("user", "cli", "principal recorded for transactions")
var metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/* on this address while the command runs (empty: off)")
var shards = flag.Int("shards", 1, "shard the database across N engine instances under one signed super-root (>1 enables sharded mode)")
var auditInterval = flag.Duration("audit-interval", time.Second, "always-on auditor cycle interval (audit, serve)")
var auditSample = flag.Float64("audit-sample", 0, "fraction of cold blocks the auditor re-checks per cycle, 0..1 (audit, serve)")
var checkpointEvery = flag.Duration("checkpoint-every", 0, "take a non-quiescing checkpoint on this interval while serving, bounding restart replay time (serve; 0: off)")
var slowMS = flag.Int("slow-ms", 100, "slow-query threshold in milliseconds: transactions at or above it are always trace-retained and logged to /debug/slow (0: retain every trace)")
var traceSample = flag.Float64("trace-sample", 0.01, "fraction of fast, error-free traces retained, 0..1")

func auditOpts() sqlledger.AuditorOptions {
	return sqlledger.AuditorOptions{Interval: *auditInterval, SampleFraction: *auditSample}
}

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	reg := sqlledger.NewMetricsRegistry()
	reg.Traces().SetSlowThreshold(time.Duration(*slowMS) * time.Millisecond)
	reg.Traces().SetSampleRate(*traceSample)
	if *shards > 1 {
		shardedMain(reg, args)
		return
	}
	db, err := sqlledger.Open(sqlledger.Options{Dir: *dbDir, BlockSize: 1000, Obs: reg})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if *metricsAddr != "" {
		srv, err := db.StartOpsServer(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		stopSampler := sqlledger.StartRuntimeSampler(reg, time.Second)
		defer stopSampler()
		printOpsEndpoints(srv.Addr())
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "create":
		cmdCreate(db, rest)
	case "insert", "update":
		cmdWrite(db, cmd, rest)
	case "delete":
		cmdDelete(db, rest)
	case "select":
		cmdSelect(db, rest)
	case "view":
		cmdView(db, rest)
	case "digest":
		cmdDigest(db)
	case "verify":
		cmdVerify(db, rest)
	case "tamper":
		cmdTamper(db, rest)
	case "tables":
		cmdTables(db)
	case "checkpoint":
		if err := db.Checkpoint(); err != nil {
			fatal(err)
		}
		fmt.Println("checkpoint ok")
	case "receipt":
		cmdReceipt(db, rest)
	case "verify-receipt":
		cmdVerifyReceipt(rest)
	case "truncate":
		cmdTruncate(db, rest)
	case "restore":
		cmdRestore(db, rest)
	case "history":
		cmdHistory(db, rest)
	case "sql":
		cmdSQL(db, rest)
	case "audit":
		cmdAudit(db, rest)
	case "serve":
		cmdServe(db, reg, rest)
	default:
		usage()
	}
}

// shardedMain dispatches commands against a sharded database
// (-shards N): each shard is an independent engine under one signed
// super-root. DML routes by primary key; multi-shard transactions
// commit through 2PC; `superblock` and `verify-super` replace the
// single-instance `digest`/`verify` pair.
func shardedMain(reg *sqlledger.MetricsRegistry, args []string) {
	db, err := sqlledger.OpenSharded(sqlledger.Options{
		Dir: *dbDir, Shards: *shards, BlockSize: 1000, Obs: reg,
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "create":
		if len(rest) < 2 {
			usage()
		}
		name, schema := parseTableSpec(rest)
		if _, err := db.CreateLedgerTable(name, schema, sqlledger.Updateable); err != nil {
			fatal(err)
		}
		fmt.Printf("created updateable ledger table %s across %d shards (%s)\n", name, db.NumShards(), schema)
	case "insert", "update":
		if len(rest) < 2 {
			usage()
		}
		st, err := db.LedgerTable(rest[0])
		if err != nil {
			fatal(err)
		}
		groups := splitRows(rest[1:])
		if cmd != "insert" && len(groups) > 1 {
			fatal(fmt.Errorf("multi-row ';' syntax is only supported for insert"))
		}
		tx := db.Begin(*user)
		for _, g := range groups {
			row := rowFromArgs(st.Part(0), g)
			if cmd == "insert" {
				err = tx.Insert(st, row)
			} else {
				err = tx.Update(st, row)
			}
			if err != nil {
				tx.Rollback()
				fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s ok (%d rows)\n", cmd, len(groups))
	case "delete":
		if len(rest) != 2 {
			usage()
		}
		st, err := db.LedgerTable(rest[0])
		if err != nil {
			fatal(err)
		}
		kv, err := parseValue(st.Part(0).VisibleColumns()[0], rest[1])
		if err != nil {
			fatal(err)
		}
		tx := db.Begin(*user)
		if err := tx.Delete(st, kv); err != nil {
			tx.Rollback()
			fatal(err)
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
		fmt.Println("delete ok")
	case "select":
		if len(rest) != 1 {
			usage()
		}
		st, err := db.LedgerTable(rest[0])
		if err != nil {
			fatal(err)
		}
		for _, c := range st.Part(0).VisibleColumns() {
			fmt.Printf("%-16s", c.Name)
		}
		fmt.Println()
		tx := db.Begin(*user)
		defer tx.Rollback()
		if err := tx.Scan(st, func(r sqlledger.Row) bool {
			for _, v := range r {
				fmt.Printf("%-16s", v.String())
			}
			fmt.Println()
			return true
		}); err != nil {
			fatal(err)
		}
	case "superblock":
		sb, err := db.CloseSuperBlock()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(sb.JSON()))
		fmt.Fprintf(os.Stderr, "super-root %s over %d shards, public key %x\n",
			sb.Root, sb.Shards, db.PublicKey())
	case "verify-super":
		sb := db.LastSuperBlock()
		if len(rest) == 1 {
			b, err := os.ReadFile(rest[0])
			if err != nil {
				fatal(err)
			}
			if sb, err = sqlledger.ParseSuperBlock(b); err != nil {
				fatal(err)
			}
		} else if len(rest) > 1 {
			usage()
		}
		if sb == nil {
			fatal(fmt.Errorf("no super-block yet: run `sqlledger -shards %d superblock` first", *shards))
		}
		rep, err := sqlledger.VerifySuperBlock(db, sb, db.PublicKey(), sqlledger.VerifyOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		if !rep.Ok() {
			os.Exit(1)
		}
	case "audit":
		cmdAuditSharded(db, rest)
	case "serve":
		cmdServeSharded(db, reg, rest)
	default:
		fatal(fmt.Errorf("command %q is not supported in sharded mode (-shards > 1); "+
			"supported: create, insert, update, delete, select, superblock, verify-super, audit, serve", cmd))
	}
}

// cmdAuditSharded mirrors cmdAudit across every shard plus the signed
// super-block head checks.
func cmdAuditSharded(db *sqlledger.ShardedDB, args []string) {
	if len(args) > 1 {
		usage()
	}
	sa, err := db.NewAuditor(auditOpts())
	if err != nil {
		fatal(err)
	}
	var st sqlledger.ShardedAuditStatus
	if len(args) == 1 {
		d, err := time.ParseDuration(args[0])
		if err != nil {
			fatal(err)
		}
		sa.Start()
		time.Sleep(d)
		sa.Stop()
		st = sa.Status()
	} else {
		st = sa.RunCycle()
	}
	printJSON(st)
	if !st.Ok {
		fmt.Fprintln(os.Stderr, "sqlledger: tampering localized in sharded ledger")
		os.Exit(1)
	}
}

// cmdServeSharded runs the sharded ops surface with one auditor per
// shard under the super-root.
func cmdServeSharded(db *sqlledger.ShardedDB, reg *sqlledger.MetricsRegistry, args []string) {
	if len(args) < 1 || len(args) > 2 {
		usage()
	}
	opts := auditOpts()
	sa, err := db.NewAuditor(opts)
	if err != nil {
		fatal(err)
	}
	sa.Start()
	defer sa.Stop()
	hc := db.NewHealthChecker(sqlledger.HealthThresholds{MaxVerifiedLag: 10 * opts.Interval})
	srv, err := sqlledger.ServeOps(args[0], db.OpsHandler(hc))
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	stopSampler := sqlledger.StartRuntimeSampler(reg, time.Second)
	defer stopSampler()
	stopCP := startCheckpointTicker(db.Checkpoint)
	defer stopCP()
	printOpsEndpoints(srv.Addr())
	serveWait(args)
}

// cmdServe runs the operational HTTP server (metrics, health, debug
// endpoints) until a signal arrives — or for a fixed duration when one is
// given, which keeps CI invocations self-terminating. The always-on
// auditor runs alongside it, so /healthz carries a live "verified up to
// block K" claim and flips to 503 when tampering is localized.
func cmdServe(db *sqlledger.DB, reg *sqlledger.MetricsRegistry, args []string) {
	if len(args) < 1 || len(args) > 2 {
		usage()
	}
	opts := auditOpts()
	a, err := db.NewAuditor(opts)
	if err != nil {
		fatal(err)
	}
	a.Start()
	defer a.Stop()
	hc := db.NewHealthChecker(sqlledger.HealthThresholds{MaxVerifiedLag: 10 * opts.Interval})
	srv, err := sqlledger.ServeOps(args[0], db.OpsHandler(hc))
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	stopSampler := sqlledger.StartRuntimeSampler(reg, time.Second)
	defer stopSampler()
	stopCP := startCheckpointTicker(db.Checkpoint)
	defer stopCP()
	printOpsEndpoints(srv.Addr())
	serveWait(args)
}

// startCheckpointTicker runs cp on the -checkpoint-every interval until
// the returned stop function is called. Checkpoints are non-quiescing —
// commits keep flowing while the snapshot streams out — so taking them
// on a timer while serving costs microseconds of write stall and keeps
// restart replay bounded by one interval of WAL.
func startCheckpointTicker(cp func() error) (stop func()) {
	if *checkpointEvery <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(*checkpointEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := cp(); err != nil {
					fmt.Fprintln(os.Stderr, "sqlledger: checkpoint:", err)
				}
			}
		}
	}()
	return func() { close(done) }
}

// serveWait blocks for the optional DURATION argument, or until a
// signal.
func serveWait(args []string) {
	if len(args) == 2 {
		d, err := time.ParseDuration(args[1])
		if err != nil {
			fatal(err)
		}
		time.Sleep(d)
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// cmdAudit drives the auditor explicitly: with no argument it runs one
// synchronous cycle and prints the status; with a duration it runs the
// background loop that long first. Exits 1 when tampering was localized.
func cmdAudit(db *sqlledger.DB, args []string) {
	if len(args) > 1 {
		usage()
	}
	a, err := db.NewAuditor(auditOpts())
	if err != nil {
		fatal(err)
	}
	var st sqlledger.AuditStatus
	if len(args) == 1 {
		d, err := time.ParseDuration(args[0])
		if err != nil {
			fatal(err)
		}
		a.Start()
		time.Sleep(d)
		a.Stop()
		st = a.Status()
	} else {
		st = a.RunCycle()
	}
	printJSON(st)
	if !st.Ok {
		fmt.Fprintln(os.Stderr, "sqlledger: tampering localized:", st.LastReport)
		os.Exit(1)
	}
}

func printJSON(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(b))
}

func printOpsEndpoints(addr string) {
	fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	fmt.Fprintf(os.Stderr, "health:  http://%s/healthz\n", addr)
	fmt.Fprintf(os.Stderr, "debug:   http://%s/debug/{ledger,audit,events,spans,pprof}\n", addr)
}

// cmdSQL executes SQL: either the statements given as arguments, or a
// read-eval-print loop over stdin when none are given.
func cmdSQL(db *sqlledger.DB, args []string) {
	s := sqlledger.NewSQLSession(db, *user)
	defer s.Close()
	printResult := func(r *sqlledger.SQLResult) {
		switch {
		case r.Columns != nil:
			for _, c := range r.Columns {
				fmt.Printf("%-20s", c)
			}
			fmt.Println()
			for _, row := range r.Rows {
				for _, v := range row {
					fmt.Printf("%-20s", v.String())
				}
				fmt.Println()
			}
			fmt.Printf("(%d rows)\n", len(r.Rows))
		case r.Message != "":
			fmt.Println(r.Message)
		default:
			fmt.Printf("(%d rows affected)\n", r.RowsAffected)
		}
	}
	if len(args) > 0 {
		results, err := s.ExecScript(strings.Join(args, " "))
		for _, r := range results {
			printResult(r)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	fmt.Fprintln(os.Stderr, "sqlledger SQL shell — end statements with ';', ctrl-D to exit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if s.InTransaction() {
			fmt.Fprint(os.Stderr, "ledger*> ")
		} else {
			fmt.Fprint(os.Stderr, "ledger> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			results, err := s.ExecScript(buf.String())
			buf.Reset()
			for _, r := range results {
				printResult(r)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		prompt()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sqlledger -db DIR COMMAND [args]
commands:
  create TABLE col:TYPE[:key|:null]...   create an updateable ledger table
  insert TABLE v1 v2 ... [';' v1 v2 ...] insert one or more rows (one tx)
  update TABLE v1 v2 ...                 update the row with that key
  delete TABLE key                       delete by (first) key column
  select TABLE                           print current rows
  view TABLE                             print the ledger view
  digest                                 print a database digest (JSON)
  verify FILE...                         verify against stored digests
  tamper TABLE key value                 storage-level attack simulation
  tables                                 list ledger tables
  history TABLE                          print the history table
  sql [STATEMENTS]                       run SQL (or a REPL on stdin)
  checkpoint                             drain the ledger queue + snapshot
  receipt TXID KEYFILE                   issue a signed receipt (ed25519 seed file)
  verify-receipt FILE PUBKEYHEX          verify a receipt offline
  truncate BEFORE_BLOCK                  delete ledger history below a block
  restore DSTDIR UNIXNANO                point-in-time restore
  audit [DURATION]                       run the always-on auditor: one cycle, or
                                         a background loop for DURATION; exits 1
                                         when tampering is localized
  serve ADDR [DURATION]                  run the ops HTTP server (/metrics,
                                         /healthz, /debug/ledger, /debug/audit,
                                         /debug/events, /debug/spans,
                                         /debug/pprof) with the auditor running
                                         (-audit-interval, -audit-sample,
                                         -checkpoint-every for periodic
                                         non-quiescing checkpoints)
sharded mode (-shards N, N > 1):
  create/insert/update/delete/select     as above, routed by primary key
  superblock                             close + print a signed super-block (JSON)
  verify-super [FILE]                    verify every shard against a super-block
  audit [DURATION]                       audit every shard + super-block heads
  serve ADDR [DURATION]                  sharded ops surface with per-shard auditors`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlledger:", err)
	os.Exit(1)
}

func parseType(s string) (sqlledger.TypeID, error) {
	switch strings.ToUpper(s) {
	case "BIT":
		return sqlledger.TypeBit, nil
	case "TINYINT":
		return sqlledger.TypeTinyInt, nil
	case "SMALLINT":
		return sqlledger.TypeSmallInt, nil
	case "INT":
		return sqlledger.TypeInt, nil
	case "BIGINT":
		return sqlledger.TypeBigInt, nil
	case "FLOAT":
		return sqlledger.TypeFloat, nil
	case "VARCHAR":
		return sqlledger.TypeVarChar, nil
	case "NVARCHAR":
		return sqlledger.TypeNVarChar, nil
	case "DATETIME":
		return sqlledger.TypeDateTime, nil
	case "VARBINARY":
		return sqlledger.TypeVarBinary, nil
	default:
		return 0, fmt.Errorf("unsupported type %q", s)
	}
}

// parseTableSpec parses `TABLE col:TYPE[:key|:null]...` arguments into a
// table name and schema; shared by the plain and sharded create paths.
func parseTableSpec(args []string) (string, *sqlledger.Schema) {
	name := args[0]
	var cols []sqlledger.Column
	var keys []string
	for _, spec := range args[1:] {
		parts := strings.Split(spec, ":")
		if len(parts) < 2 {
			fatal(fmt.Errorf("bad column spec %q (want name:TYPE[:key|:null])", spec))
		}
		t, err := parseType(parts[1])
		if err != nil {
			fatal(err)
		}
		col := sqlledger.Col(parts[0], t)
		for _, mod := range parts[2:] {
			switch mod {
			case "key":
				keys = append(keys, parts[0])
			case "null":
				col.Nullable = true
			default:
				fatal(fmt.Errorf("bad column modifier %q", mod))
			}
		}
		cols = append(cols, col)
	}
	schema, err := sqlledger.NewSchema(cols, keys...)
	if err != nil {
		fatal(err)
	}
	return name, schema
}

func cmdCreate(db *sqlledger.DB, args []string) {
	if len(args) < 2 {
		usage()
	}
	name, schema := parseTableSpec(args)
	if _, err := db.CreateLedgerTable(name, schema, sqlledger.Updateable); err != nil {
		fatal(err)
	}
	fmt.Printf("created updateable ledger table %s (%s)\n", name, schema)
}

func parseValue(col sqlledger.Column, s string) (sqlledger.Value, error) {
	if s == "NULL" {
		return sqlledger.Null(col.Type), nil
	}
	switch col.Type {
	case sqlledger.TypeBit:
		return sqlledger.Bit(s == "1" || strings.EqualFold(s, "true")), nil
	case sqlledger.TypeTinyInt, sqlledger.TypeSmallInt, sqlledger.TypeInt, sqlledger.TypeBigInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return sqlledger.Value{}, err
		}
		return sqlledger.Value{Type: col.Type, I64: n}, nil
	case sqlledger.TypeFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return sqlledger.Value{}, err
		}
		return sqlledger.Float(f), nil
	case sqlledger.TypeDateTime:
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return sqlledger.Value{}, err
		}
		return sqlledger.DateTime(t), nil
	case sqlledger.TypeVarChar:
		return sqlledger.VarChar(s), nil
	case sqlledger.TypeNVarChar:
		return sqlledger.NVarChar(s), nil
	case sqlledger.TypeVarBinary:
		return sqlledger.VarBinary([]byte(s)), nil
	}
	return sqlledger.Value{}, fmt.Errorf("cannot parse %q as %s", s, col.Type)
}

func rowFromArgs(lt *sqlledger.LedgerTable, args []string) sqlledger.Row {
	cols := lt.VisibleColumns()
	if len(args) != len(cols) {
		fatal(fmt.Errorf("table %s needs %d values, got %d", lt.Name(), len(cols), len(args)))
	}
	row := make(sqlledger.Row, len(cols))
	for i, c := range cols {
		v, err := parseValue(c, args[i])
		if err != nil {
			fatal(fmt.Errorf("column %s: %v", c.Name, err))
		}
		row[i] = v
	}
	return row
}

// splitRows splits CLI value arguments into per-row groups on literal
// ";" separators: `insert t a 1 ';' b 2` inserts two rows in one
// transaction.
func splitRows(args []string) [][]string {
	var groups [][]string
	cur := []string{}
	for _, a := range args {
		if a == ";" {
			groups = append(groups, cur)
			cur = []string{}
			continue
		}
		cur = append(cur, a)
	}
	return append(groups, cur)
}

func cmdWrite(db *sqlledger.DB, op string, args []string) {
	if len(args) < 2 {
		usage()
	}
	lt, err := db.LedgerTable(args[0])
	if err != nil {
		fatal(err)
	}
	groups := splitRows(args[1:])
	if op != "insert" && len(groups) > 1 {
		fatal(fmt.Errorf("multi-row ';' syntax is only supported for insert"))
	}
	tx := db.Begin(*user)
	if op == "insert" && len(groups) > 1 {
		rows := make([]sqlledger.Row, len(groups))
		for i, g := range groups {
			rows[i] = rowFromArgs(lt, g)
		}
		err = tx.InsertBatch(lt, rows)
	} else if op == "insert" {
		err = tx.Insert(lt, rowFromArgs(lt, groups[0]))
	} else {
		err = tx.Update(lt, rowFromArgs(lt, groups[0]))
	}
	if err != nil {
		tx.Rollback()
		fatal(err)
	}
	if err := tx.Commit(); err != nil {
		fatal(err)
	}
	if len(groups) > 1 {
		fmt.Printf("%s ok (%d rows, tx %d)\n", op, len(groups), tx.ID())
	} else {
		fmt.Printf("%s ok (tx %d)\n", op, tx.ID())
	}
}

func cmdDelete(db *sqlledger.DB, args []string) {
	if len(args) != 2 {
		usage()
	}
	lt, err := db.LedgerTable(args[0])
	if err != nil {
		fatal(err)
	}
	keyCol := lt.VisibleColumns()[0]
	kv, err := parseValue(keyCol, args[1])
	if err != nil {
		fatal(err)
	}
	tx := db.Begin(*user)
	if err := tx.Delete(lt, kv); err != nil {
		tx.Rollback()
		fatal(err)
	}
	if err := tx.Commit(); err != nil {
		fatal(err)
	}
	fmt.Printf("delete ok (tx %d)\n", tx.ID())
}

func cmdSelect(db *sqlledger.DB, args []string) {
	if len(args) != 1 {
		usage()
	}
	lt, err := db.LedgerTable(args[0])
	if err != nil {
		fatal(err)
	}
	cols := lt.VisibleColumns()
	for _, c := range cols {
		fmt.Printf("%-16s", c.Name)
	}
	fmt.Println()
	tx := db.Begin(*user)
	defer tx.Rollback()
	tx.Scan(lt, func(r sqlledger.Row) bool {
		for _, v := range r {
			fmt.Printf("%-16s", v.String())
		}
		fmt.Println()
		return true
	})
}

func cmdView(db *sqlledger.DB, args []string) {
	if len(args) != 1 {
		usage()
	}
	lt, err := db.LedgerTable(args[0])
	if err != nil {
		fatal(err)
	}
	cols := lt.VisibleColumns()
	for _, c := range cols {
		fmt.Printf("%-16s", c.Name)
	}
	fmt.Printf("%-10s %-14s %-20s %s\n", "operation", "transaction", "principal", "committed")
	for _, vr := range lt.LedgerView() {
		for _, v := range vr.Row {
			fmt.Printf("%-16s", v.String())
		}
		who, ts, _, _ := db.TransactionInfo(vr.TxID)
		fmt.Printf("%-10s %-14d %-20s %s\n", vr.Operation, vr.TxID, who,
			time.Unix(0, ts).UTC().Format(time.RFC3339))
	}
}

func cmdDigest(db *sqlledger.DB) {
	d, err := db.GenerateDigest()
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(d.JSON()))
}

func cmdVerify(db *sqlledger.DB, files []string) {
	var digests []sqlledger.Digest
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		d, err := sqlledger.ParseDigest(b)
		if err != nil {
			fatal(err)
		}
		digests = append(digests, d)
	}
	rep, err := db.Verify(digests, sqlledger.VerifyOptions{Progress: progressLine(os.Stderr)})
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	if !rep.Ok() {
		os.Exit(1)
	}
}

// progressLine returns a VerifyOptions.Progress callback that renders an
// in-place percentage line on w, cleared once verification completes.
func progressLine(w io.Writer) func(sqlledger.VerifyProgress) {
	lastPct := -1
	return func(p sqlledger.VerifyProgress) {
		pct := int(p.Ratio * 100)
		if pct == lastPct && p.Ratio < 1 {
			return
		}
		lastPct = pct
		label := p.Phase
		if p.Table != "" {
			label += " " + p.Table
		}
		fmt.Fprintf(w, "\r  verify %3d%% %-40s", pct, label)
		if p.Ratio >= 1 {
			fmt.Fprintf(w, "\r%*s\r", 56, "")
		}
	}
}

func cmdTamper(db *sqlledger.DB, args []string) {
	if len(args) != 3 {
		usage()
	}
	lt, err := db.LedgerTable(args[0])
	if err != nil {
		fatal(err)
	}
	keyCol := lt.VisibleColumns()[0]
	kv, err := parseValue(keyCol, args[1])
	if err != nil {
		fatal(err)
	}
	key := sqltypes.EncodeKey(nil, kv)
	// Find the ordinal of the second visible column to tamper with.
	target := lt.VisibleColumns()[1]
	nv, err := parseValue(target, args[2])
	if err != nil {
		fatal(err)
	}
	err = db.Engine().TamperUpdateRow(lt.Table(), key, func(r sqlledger.Row) sqlledger.Row {
		r[target.Ordinal] = nv
		return r
	}, true)
	if err != nil {
		fatal(err)
	}
	// Tampering bypasses the WAL (like editing data files directly), so
	// persist it via a checkpoint — the attacker flushing their edit.
	if _, err := db.Engine().Checkpoint(); err != nil {
		fatal(err)
	}
	fmt.Printf("tampered %s[%s].%s = %s  -- bypassed the ledger; verification will detect this\n",
		lt.Name(), args[1], target.Name, args[2])
}

func cmdReceipt(db *sqlledger.DB, args []string) {
	if len(args) != 2 {
		usage()
	}
	txID, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		fatal(err)
	}
	// The key file holds a 32-byte ed25519 seed (created if missing).
	seed, err := os.ReadFile(args[1])
	if os.IsNotExist(err) {
		seed = make([]byte, ed25519.SeedSize)
		if _, err := rand.Read(seed); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(args[1], seed, 0o600); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated new signing key in %s\n", args[1])
	} else if err != nil {
		fatal(err)
	}
	if len(seed) != ed25519.SeedSize {
		fatal(fmt.Errorf("key file must hold a %d-byte seed", ed25519.SeedSize))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	// Receipts need a closed block.
	if _, err := db.GenerateDigest(); err != nil {
		fatal(err)
	}
	r, err := db.GenerateReceipt(txID, priv)
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(r.JSON()))
	fmt.Fprintf(os.Stderr, "public key: %x\n", priv.Public().(ed25519.PublicKey))
}

func cmdVerifyReceipt(args []string) {
	if len(args) != 2 {
		usage()
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	r, err := sqlledger.ParseReceipt(b)
	if err != nil {
		fatal(err)
	}
	pub, err := hex.DecodeString(args[1])
	if err != nil || len(pub) != ed25519.PublicKeySize {
		fatal(fmt.Errorf("bad public key"))
	}
	if err := sqlledger.VerifyReceipt(r, ed25519.PublicKey(pub)); err != nil {
		fatal(err)
	}
	fmt.Printf("receipt verifies: tx %d in block %d of %q, principal %q\n",
		r.Entry.TxID, r.BlockID, r.DatabaseName, r.Entry.User)
}

func cmdTruncate(db *sqlledger.DB, args []string) {
	if len(args) != 1 {
		usage()
	}
	before, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		fatal(err)
	}
	if err := db.TruncateLedger(before); err != nil {
		fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		fatal(err)
	}
	fmt.Printf("truncated ledger history below block %d (audited in %s)\n", before, "sys_ledger_truncations")
}

func cmdRestore(db *sqlledger.DB, args []string) {
	if len(args) != 2 {
		usage()
	}
	ts, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		fatal(err)
	}
	db.Close() // restore reads the WAL file directly
	if err := sqlledger.RestoreToTime(*dbDir, args[0], ts); err != nil {
		fatal(err)
	}
	fmt.Printf("restored %s as of %s into %s (new incarnation)\n",
		*dbDir, time.Unix(0, ts).UTC().Format(time.RFC3339Nano), args[0])
	os.Exit(0)
}

func cmdHistory(db *sqlledger.DB, args []string) {
	if len(args) != 1 {
		usage()
	}
	lt, err := db.LedgerTable(args[0])
	if err != nil {
		fatal(err)
	}
	if lt.History() == nil {
		fatal(fmt.Errorf("%s is append-only: no history table", args[0]))
	}
	cols := lt.VisibleColumns()
	for _, c := range cols {
		fmt.Printf("%-16s", c.Name)
	}
	fmt.Println()
	lt.History().Scan(func(_ []byte, full sqlledger.Row) bool {
		for _, c := range cols {
			fmt.Printf("%-16s", full[c.Ordinal].String())
		}
		fmt.Println()
		return true
	})
}

func cmdTables(db *sqlledger.DB) {
	fmt.Printf("%-32s %-6s %-12s %s\n", "name", "id", "kind", "rows")
	for _, lt := range db.LedgerTables() {
		fmt.Printf("%-32s %-6d %-12s %d\n", lt.Name(), lt.ID(), lt.Kind(), lt.Table().RowCount())
	}
}
