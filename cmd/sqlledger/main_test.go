package main

import (
	"testing"
	"time"

	"sqlledger"
)

func TestParseType(t *testing.T) {
	good := map[string]sqlledger.TypeID{
		"BIGINT": sqlledger.TypeBigInt, "bigint": sqlledger.TypeBigInt,
		"INT": sqlledger.TypeInt, "SMALLINT": sqlledger.TypeSmallInt,
		"TINYINT": sqlledger.TypeTinyInt, "BIT": sqlledger.TypeBit,
		"FLOAT": sqlledger.TypeFloat, "VARCHAR": sqlledger.TypeVarChar,
		"NVARCHAR": sqlledger.TypeNVarChar, "DATETIME": sqlledger.TypeDateTime,
		"VARBINARY": sqlledger.TypeVarBinary,
	}
	for s, want := range good {
		got, err := parseType(s)
		if err != nil || got != want {
			t.Errorf("parseType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseType("BLOB"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestParseValue(t *testing.T) {
	col := func(typ sqlledger.TypeID) sqlledger.Column {
		return sqlledger.Column{Name: "c", Type: typ, Nullable: true}
	}
	cases := []struct {
		typ   sqlledger.TypeID
		in    string
		check func(sqlledger.Value) bool
	}{
		{sqlledger.TypeBigInt, "-42", func(v sqlledger.Value) bool { return v.Int() == -42 }},
		{sqlledger.TypeInt, "7", func(v sqlledger.Value) bool { return v.Int() == 7 }},
		{sqlledger.TypeBit, "true", func(v sqlledger.Value) bool { return v.Bool() }},
		{sqlledger.TypeBit, "0", func(v sqlledger.Value) bool { return !v.Bool() }},
		{sqlledger.TypeFloat, "2.5", func(v sqlledger.Value) bool { return v.Float() == 2.5 }},
		{sqlledger.TypeNVarChar, "hello", func(v sqlledger.Value) bool { return v.Str == "hello" }},
		{sqlledger.TypeVarBinary, "raw", func(v sqlledger.Value) bool { return string(v.Bytes) == "raw" }},
		{sqlledger.TypeBigInt, "NULL", func(v sqlledger.Value) bool { return v.Null }},
		{sqlledger.TypeDateTime, "2026-07-05T10:00:00Z",
			func(v sqlledger.Value) bool { return v.Time().Equal(time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)) }},
	}
	for i, c := range cases {
		v, err := parseValue(col(c.typ), c.in)
		if err != nil || !c.check(v) {
			t.Errorf("case %d (%v %q): %v, %v", i, c.typ, c.in, v, err)
		}
	}
	if _, err := parseValue(col(sqlledger.TypeBigInt), "not-a-number"); err == nil {
		t.Error("bad integer accepted")
	}
	if _, err := parseValue(col(sqlledger.TypeDateTime), "yesterday"); err == nil {
		t.Error("bad datetime accepted")
	}
}
