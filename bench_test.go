// Benchmarks regenerating every figure in the paper's evaluation (§4).
//
//	Figure 7: BenchmarkFigure7TPCC / BenchmarkFigure7TPCE
//	          throughput of the OLTP workloads, ledger vs. regular tables;
//	          the paper reports the relative delta (-30.6% / -6.9%).
//	Figure 8: BenchmarkFigure8
//	          single-row DML latency (insert/update/delete), 260-byte
//	          rows, 0-3 nonclustered indexes, ledger vs. regular.
//	Figure 9: BenchmarkFigure9Verification
//	          ledger verification time vs. number of transactions
//	          (each transaction updates five 260-byte rows).
//	§4.1.1:   BenchmarkBlockchainBaseline — the simulated decentralized
//	          ledger the paper compares against (">20x" claim).
//	§2.2:     BenchmarkDigest{Incremental,Naive} — why the database
//	          ledger is maintained incrementally.
//	§4.1.2:   BenchmarkCommit — the ~125µs commit cost the paper notes
//	          dominates short transactions.
//	§3.3.2:   BenchmarkCommitConcurrent — commit throughput and
//	          fsyncs/commit at 1-8 clients, group vs. serialized pipeline.
//
// cmd/ledgerbench runs the same experiments and prints paper-style tables;
// EXPERIMENTS.md records paper-vs-measured numbers.
package sqlledger_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger"
	"sqlledger/internal/engine"
	"sqlledger/internal/simchain"
	"sqlledger/internal/wal"
	"sqlledger/internal/workload"
)

func benchDB(b *testing.B) *sqlledger.DB {
	b.Helper()
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: b.TempDir(), Name: "bench", BlockSize: sqlledger.DefaultBlockSize,
		LockTimeout: 5 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// --- Figure 7: workload throughput ---------------------------------------

func BenchmarkFigure7TPCC(b *testing.B) {
	for _, ledger := range []bool{false, true} {
		name := "regular"
		if ledger {
			name = "ledger"
		}
		b.Run(name, func(b *testing.B) {
			db := benchDB(b)
			w, err := workload.NewTPCC(db, ledger, 2)
			if err != nil {
				b.Fatal(err)
			}
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := w.NewClient(seed.Add(1))
				for pb.Next() {
					// Lock-timeout aborts under contention count as work
					// (the paper measures offered throughput).
					_ = c.RunOne()
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}

func BenchmarkFigure7TPCE(b *testing.B) {
	for _, ledger := range []bool{false, true} {
		name := "regular"
		if ledger {
			name = "ledger"
		}
		b.Run(name, func(b *testing.B) {
			db := benchDB(b)
			w, err := workload.NewTPCE(db, ledger, 200, 100)
			if err != nil {
				b.Fatal(err)
			}
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := w.NewClient(seed.Add(1))
				for pb.Next() {
					_ = c.RunOne()
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}

// --- Figure 8: DML latency -------------------------------------------------

// fig8Schema builds the paper's 260-byte-row table: an id plus three
// indexable integers plus filler.
func fig8Schema() *sqlledger.Schema {
	return sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("a", sqlledger.TypeBigInt),
		sqlledger.Col("b", sqlledger.TypeBigInt),
		sqlledger.Col("c", sqlledger.TypeBigInt),
		sqlledger.Col("filler", sqlledger.TypeVarChar),
	}, "id")
}

func fig8Row(id int64) sqlledger.Row {
	filler := make([]byte, 210) // ~260 bytes serialized with the id/ints
	for i := range filler {
		filler[i] = byte('a' + (id+int64(i))%26)
	}
	return sqlledger.Row{
		sqlledger.BigInt(id), sqlledger.BigInt(id * 3), sqlledger.BigInt(id * 7),
		sqlledger.BigInt(id * 11), sqlledger.VarChar(string(filler)),
	}
}

type fig8Table struct {
	db     *sqlledger.DB
	ledger *sqlledger.LedgerTable // nil in regular mode
	name   string
}

func fig8Setup(b *testing.B, ledger bool, indexes int) fig8Table {
	b.Helper()
	db := benchDB(b)
	ft := fig8Table{db: db, name: "fig8"}
	if ledger {
		lt, err := db.CreateLedgerTable("fig8", fig8Schema(), sqlledger.Updateable)
		if err != nil {
			b.Fatal(err)
		}
		ft.ledger = lt
	} else {
		spec := engine.CreateTableSpec{Name: "fig8", Schema: fig8Schema()}
		if _, err := db.Engine().CreateTable(spec); err != nil {
			b.Fatal(err)
		}
	}
	for i, col := range []string{"a", "b", "c"}[:indexes] {
		if _, err := db.Engine().CreateIndex("fig8", fmt.Sprintf("ix_fig8_%d", i), col); err != nil {
			b.Fatal(err)
		}
	}
	return ft
}

func (ft fig8Table) insert(b *testing.B, id int64) {
	tx := ft.db.Begin("bench")
	var err error
	if ft.ledger != nil {
		err = tx.Insert(ft.ledger, fig8Row(id))
	} else {
		et, _ := ft.db.Engine().Table(ft.name)
		_, err = tx.Raw().Insert(et, fig8Row(id))
	}
	if err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

func (ft fig8Table) update(b *testing.B, id int64) {
	tx := ft.db.Begin("bench")
	row := fig8Row(id)
	row[1] = sqlledger.BigInt(id * 13)
	var err error
	if ft.ledger != nil {
		err = tx.Update(ft.ledger, row)
	} else {
		et, _ := ft.db.Engine().Table(ft.name)
		_, err = tx.Raw().Update(et, row)
	}
	if err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

func (ft fig8Table) del(b *testing.B, id int64) {
	tx := ft.db.Begin("bench")
	var err error
	if ft.ledger != nil {
		err = tx.Delete(ft.ledger, sqlledger.BigInt(id))
	} else {
		et, _ := ft.db.Engine().Table(ft.name)
		_, err = tx.Raw().Delete(et, sqlledger.BigInt(id))
	}
	if err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFigure8(b *testing.B) {
	for _, mode := range []string{"regular", "ledger"} {
		ledger := mode == "ledger"
		for _, nIdx := range []int{0, 1, 2, 3} {
			b.Run(fmt.Sprintf("insert/%s/idx=%d", mode, nIdx), func(b *testing.B) {
				ft := fig8Setup(b, ledger, nIdx)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ft.insert(b, int64(i))
				}
			})
			b.Run(fmt.Sprintf("update/%s/idx=%d", mode, nIdx), func(b *testing.B) {
				ft := fig8Setup(b, ledger, nIdx)
				for i := 0; i < b.N; i++ {
					ft.insert(b, int64(i))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ft.update(b, int64(i))
				}
			})
			b.Run(fmt.Sprintf("delete/%s/idx=%d", mode, nIdx), func(b *testing.B) {
				ft := fig8Setup(b, ledger, nIdx)
				for i := 0; i < b.N; i++ {
					ft.insert(b, int64(i))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ft.del(b, int64(i))
				}
			})
		}
	}
}

// --- Figure 9: verification time -------------------------------------------

func BenchmarkFigure9Verification(b *testing.B) {
	for _, nTx := range []int{1000, 5000, 20000} {
		b.Run(fmt.Sprintf("txs=%d", nTx), func(b *testing.B) {
			db := benchDB(b)
			lt, err := db.CreateLedgerTable("fig9", fig8Schema(), sqlledger.Updateable)
			if err != nil {
				b.Fatal(err)
			}
			// Each transaction updates five rows (paper's setup).
			id := int64(0)
			for i := 0; i < nTx; i++ {
				tx := db.Begin("bench")
				for j := 0; j < 5; j++ {
					id++
					if err := tx.Insert(lt, fig8Row(id)); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			d, err := db.GenerateDigest()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Ok() {
					b.Fatalf("verification failed:\n%s", rep)
				}
			}
			b.ReportMetric(float64(nTx), "txs")
		})
	}
}

// --- §4.1.1: decentralized-ledger baseline ---------------------------------

func BenchmarkBlockchainBaseline(b *testing.B) {
	cfg := simchain.DefaultConfig()
	chain := simchain.New(cfg)
	defer chain.Stop()
	payload := make([]byte, 260)
	var done atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := chain.Submit(payload); err == nil {
				done.Add(1)
			}
		}
	})
	b.ReportMetric(float64(done.Load())/b.Elapsed().Seconds(), "tx/s")
}

// --- §2.2 ablation: incremental vs. naive digest -----------------------------

func digestAblationDB(b *testing.B, rows int) (*sqlledger.DB, *sqlledger.LedgerTable) {
	b.Helper()
	db := benchDB(b)
	lt, err := db.CreateLedgerTable("abl", fig8Schema(), sqlledger.Updateable)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i += 20 {
		tx := db.Begin("bench")
		for j := 0; j < 20 && i+j < rows; j++ {
			if err := tx.Insert(lt, fig8Row(int64(i+j))); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	return db, lt
}

func BenchmarkDigestIncremental(b *testing.B) {
	db, lt := digestAblationDB(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One more transaction, then a digest: cost is O(new work), not
		// O(dataset) — what lets digests be generated every second.
		tx := db.Begin("bench")
		if err := tx.Insert(lt, fig8Row(int64(100000+i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if _, err := db.GenerateDigest(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDigestNaiveFullRehash(b *testing.B) {
	// The §2.2 naive strawman: hash the whole dataset for every digest.
	db, lt := digestAblationDB(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := db.Verify(nil, sqlledger.VerifyOptions{Tables: []string{"abl"}})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Ok() {
			b.Fatal("naive rehash failed")
		}
		_ = lt
	}
}

// --- Commit scaling: staged group-commit pipeline ----------------------------

// BenchmarkCommitConcurrent measures commit throughput under SyncFull —
// where durability costs one fsync per write group — at increasing client
// counts, comparing the serialized commit path against the staged
// group-commit pipeline. MaxBatch is set to the client count so a write
// group can absorb every in-flight commit, and a small MaxDelay lets
// slightly staggered commits join. After the run the ledger is verified
// twice, serially and in parallel, and the reports must be identical.
func BenchmarkCommitConcurrent(b *testing.B) {
	for _, pipeline := range []string{"serialized", "group"} {
		for _, clients := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/clients=%d", pipeline, clients), func(b *testing.B) {
				cfg := sqlledger.GroupCommitOptions{Disabled: pipeline == "serialized"}
				if !cfg.Disabled {
					cfg.MaxBatch = clients
					cfg.MaxDelay = 500 * time.Microsecond
				}
				db, err := sqlledger.Open(sqlledger.Options{
					Dir: b.TempDir(), Name: "bench",
					Sync:        sqlledger.SyncFull,
					LockTimeout: 5 * time.Second,
					GroupCommit: cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
				if err != nil {
					b.Fatal(err)
				}
				before := db.CommitStats()
				b.ResetTimer()
				res := workload.DriveN(clients, b.N, func(id int) func() error {
					seq := int64(0)
					return func() error {
						seq++
						tx := db.Begin("bench")
						if err := tx.Insert(lt, fig8Row(int64(id+1)*1_000_000_000+seq)); err != nil {
							tx.Rollback()
							return err
						}
						return tx.Commit()
					}
				})
				b.StopTimer()
				if res.Errors > 0 {
					b.Fatalf("%d commit errors: %v", res.Errors, res.Err)
				}
				after := db.CommitStats()
				b.ReportMetric(res.TPS(), "commits/s")
				b.ReportMetric(float64(after.Fsyncs-before.Fsyncs)/float64(res.Commits), "fsync/commit")
				if g := after.Groups - before.Groups; g > 0 {
					b.ReportMetric(float64(after.Commits-before.Commits)/float64(g), "commits/group")
				}

				// Group commit must not change what verification sees:
				// serial and parallel runs must produce identical reports.
				d, err := db.GenerateDigest()
				if err != nil {
					b.Fatal(err)
				}
				serial, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				parallel, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{Parallelism: 8})
				if err != nil {
					b.Fatal(err)
				}
				if !serial.Ok() || !parallel.Ok() {
					b.Fatalf("verification failed:\n%s\n%s", serial, parallel)
				}
				ns, np := *serial, *parallel
				ns.Timing, np.Timing = sqlledger.VerifyTiming{}, sqlledger.VerifyTiming{}
				if ns.String() != np.String() {
					b.Fatalf("parallel verification diverges from serial:\n%s\n---\n%s", ns.String(), np.String())
				}
			})
		}
	}
}

// --- §4.1.2: commit-inclusive latency ----------------------------------------

func BenchmarkCommit(b *testing.B) {
	for _, sync := range []struct {
		name string
		mode wal.SyncMode
	}{{"buffered", sqlledger.SyncBuffered}, {"fsync", sqlledger.SyncFull}} {
		b.Run(sync.name, func(b *testing.B) {
			db, err := sqlledger.Open(sqlledger.Options{
				Dir: b.TempDir(), Name: "bench",
				Sync: sync.mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			lt, err := db.CreateLedgerTable("t", fig8Schema(), sqlledger.Updateable)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin("bench")
				if err := tx.Insert(lt, fig8Row(int64(i))); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
